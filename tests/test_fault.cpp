// Tests for the fault-injection chaos layer (src/fault/) and its wiring
// through the election service path:
//
//  * backoff policy: seeded-jitter reproducibility, cap enforcement, exact
//    exponential schedule at zero jitter,
//  * fault-plan grammar: round-trips, rejection of malformed specs,
//  * per-trial fault dealing: pure function of (plan, seed, k), all-no-show
//    sparing, worker-0 death immunity,
//  * TrialSummary checkpoint codec and cell checkpoint files (round-trip,
//    spec-hash mismatch skip, corruption skip),
//  * campaign checkpoint/resume: byte-identical reporter output across
//    (uninterrupted) vs (checkpointed) vs (resumed) runs,
//  * simulated worker death: campaign bytes unchanged, campaign completes,
//  * CrashInjectingAdversary edges: max_crashes exhaustion, last-runnable
//    sparing at crash_prob = 1.0, determinism across --workers,
//  * SIGINT flag plumbing and soak-driver cooperative cancellation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "campaign/executor.hpp"
#include "campaign/reporter.hpp"
#include "campaign/soak.hpp"
#include "campaign/spec.hpp"
#include "exec/backend.hpp"
#include "fault/backoff.hpp"
#include "fault/checkpoint.hpp"
#include "fault/plan.hpp"
#include "fault/signal.hpp"
#include "sim/adversaries.hpp"
#include "sim/runner.hpp"

namespace rts::fault {
namespace {

std::string fresh_temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "rts-fault-" + name + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ------------------------------------------------------------- backoff --

TEST(Backoff, SeededJitterIsReproducible) {
  const BackoffPolicy policy;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
      EXPECT_EQ(policy.delay_us(attempt, seed), policy.delay_us(attempt, seed))
          << "attempt " << attempt << " seed " << seed;
    }
  }
  // Different seeds decorrelate at least one attempt (jitter is real).
  bool differs = false;
  for (int attempt = 1; attempt <= 8 && !differs; ++attempt) {
    differs = policy.delay_us(attempt, 1) != policy.delay_us(attempt, 2);
  }
  EXPECT_TRUE(differs);
}

TEST(Backoff, NeverExceedsCapAndRespectsJitterFloor) {
  BackoffPolicy policy;
  policy.base_us = 100;
  policy.cap_us = 5'000;
  policy.jitter = 0.5;
  for (int attempt = 1; attempt <= 30; ++attempt) {
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      const std::uint64_t delay = policy.delay_us(attempt, seed);
      EXPECT_LE(delay, policy.cap_us) << "attempt " << attempt;
      // Subtractive jitter: never below (1 - jitter) * capped value.
      const std::uint64_t capped =
          attempt >= 7 ? policy.cap_us
                       : std::min(policy.cap_us,
                                  policy.base_us << (attempt - 1));
      EXPECT_GE(delay, capped - capped / 2) << "attempt " << attempt;
    }
  }
}

TEST(Backoff, ZeroJitterGivesExactExponentialSchedule) {
  BackoffPolicy policy;
  policy.base_us = 100;
  policy.cap_us = 1'000;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.delay_us(1, 7), 100u);
  EXPECT_EQ(policy.delay_us(2, 7), 200u);
  EXPECT_EQ(policy.delay_us(3, 7), 400u);
  EXPECT_EQ(policy.delay_us(4, 7), 800u);
  EXPECT_EQ(policy.delay_us(5, 7), 1'000u);   // capped
  EXPECT_EQ(policy.delay_us(40, 7), 1'000u);  // huge attempt: still capped
}

// ------------------------------------------------------------ fault plan --

TEST(FaultPlan, ParsesFullGrammar) {
  std::string error;
  const auto plan = FaultPlan::parse(
      "stall:p=0.25,us=1500; noshow:p=0.1; delay:p=0.5,us=200; die:p=0.05",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_DOUBLE_EQ(plan->stall_p, 0.25);
  EXPECT_EQ(plan->stall_us, 1500u);
  EXPECT_DOUBLE_EQ(plan->noshow_p, 0.1);
  EXPECT_DOUBLE_EQ(plan->delay_p, 0.5);
  EXPECT_EQ(plan->delay_us, 200u);
  EXPECT_DOUBLE_EQ(plan->die_p, 0.05);
  EXPECT_TRUE(plan->active());
  // The original text is carried for reports.
  EXPECT_FALSE(plan->spec.empty());
}

TEST(FaultPlan, EmptySpecIsInactive) {
  const auto plan = FaultPlan::parse("", nullptr);
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->active());
  EXPECT_FALSE(plan->for_trial(1, 8).any());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("explode:p=1", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultPlan::parse("stall:p=1.5,us=10", nullptr).has_value());
  EXPECT_FALSE(FaultPlan::parse("noshow:p=-0.1", nullptr).has_value());
  EXPECT_FALSE(FaultPlan::parse("stall:p=0.5", nullptr).has_value())
      << "stall with p > 0 needs a positive duration";
  EXPECT_FALSE(FaultPlan::parse("delay:p=0.5,us=0", nullptr).has_value());
  EXPECT_FALSE(FaultPlan::parse("noshow:frequency=0.5", nullptr).has_value());
}

TEST(FaultPlan, ForTrialIsPureInSeed) {
  const auto plan = FaultPlan::parse(
      "stall:p=0.4,us=100; noshow:p=0.3; delay:p=0.4,us=50", nullptr);
  ASSERT_TRUE(plan.has_value());
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const TrialFaults a = plan->for_trial(seed, 8);
    const TrialFaults b = plan->for_trial(seed, 8);
    ASSERT_EQ(a.participants.size(), 8u);
    EXPECT_EQ(a.no_shows, b.no_shows);
    EXPECT_EQ(a.stalls, b.stalls);
    EXPECT_EQ(a.delays, b.delays);
    int no_shows = 0, stalls = 0, delays = 0;
    for (std::size_t i = 0; i < a.participants.size(); ++i) {
      EXPECT_EQ(a.participants[i].no_show, b.participants[i].no_show);
      EXPECT_EQ(a.participants[i].stall_us, b.participants[i].stall_us);
      EXPECT_EQ(a.participants[i].stall_after_op,
                b.participants[i].stall_after_op);
      EXPECT_EQ(a.participants[i].delay_us, b.participants[i].delay_us);
      no_shows += a.participants[i].no_show ? 1 : 0;
      stalls += a.participants[i].stall_us > 0 ? 1 : 0;
      delays += a.participants[i].delay_us > 0 ? 1 : 0;
    }
    // The summary counts are exactly the per-participant assignment.
    EXPECT_EQ(a.no_shows, no_shows);
    EXPECT_EQ(a.stalls, stalls);
    EXPECT_EQ(a.delays, delays);
  }
}

TEST(FaultPlan, AllNoShowSparesOneParticipant) {
  const auto plan = FaultPlan::parse("noshow:p=1.0", nullptr);
  ASSERT_TRUE(plan.has_value());
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const TrialFaults faults = plan->for_trial(seed, 4);
    EXPECT_EQ(faults.no_shows, 3) << "seed " << seed;
    EXPECT_FALSE(faults.participants.front().no_show)
        << "the spared contender is deterministic";
  }
}

TEST(FaultPlan, WorkerZeroNeverDies) {
  const auto plan = FaultPlan::parse("die:p=1.0", nullptr);
  ASSERT_TRUE(plan.has_value());
  for (std::uint64_t claim = 0; claim < 64; ++claim) {
    EXPECT_FALSE(plan->worker_dies(/*master_seed=*/99, /*worker=*/0, claim));
    EXPECT_TRUE(plan->worker_dies(99, 1, claim));
  }
  const auto never = FaultPlan::parse("die:p=0.0", nullptr);
  ASSERT_TRUE(never.has_value());
  EXPECT_FALSE(never->worker_dies(99, 3, 0));
  // Pure in (seed, worker, claim).
  const auto coin = FaultPlan::parse("die:p=0.5", nullptr);
  ASSERT_TRUE(coin.has_value());
  for (int worker = 1; worker <= 4; ++worker) {
    for (std::uint64_t claim = 0; claim < 16; ++claim) {
      EXPECT_EQ(coin->worker_dies(7, worker, claim),
                coin->worker_dies(7, worker, claim));
    }
  }
}

// -------------------------------------------------------------- codec --

exec::TrialSummary full_summary() {
  exec::TrialSummary trial;
  trial.backend = exec::Backend::kHw;
  trial.k = 6;
  trial.max_steps = 123;
  trial.total_steps = 456;
  trial.regs_touched = 78;
  trial.declared_registers = 90;
  trial.unfinished = 2;
  trial.crash_free = false;
  trial.completed = false;
  trial.wall_seconds = 0.125;
  trial.latency = 987'654;
  trial.rmr_total = 11;
  trial.rmr_max = 7;
  trial.aborted = 1;
  trial.retries = 3;
  trial.timed_out = true;
  trial.first_violation = "safety: two winners";
  return trial;
}

TEST(Checkpoint, TrialSummaryCodecRoundTripsEveryField) {
  const exec::TrialSummary trial = full_summary();
  std::string buffer;
  exec::append_trial_summary(buffer, trial);
  const auto* cursor =
      reinterpret_cast<const unsigned char*>(buffer.data());
  const auto* end = cursor + buffer.size();
  exec::TrialSummary decoded;
  ASSERT_TRUE(exec::read_trial_summary(&cursor, end, &decoded));
  EXPECT_EQ(cursor, end) << "codec must consume exactly what it wrote";
  EXPECT_EQ(decoded.backend, trial.backend);
  EXPECT_EQ(decoded.k, trial.k);
  EXPECT_EQ(decoded.max_steps, trial.max_steps);
  EXPECT_EQ(decoded.total_steps, trial.total_steps);
  EXPECT_EQ(decoded.regs_touched, trial.regs_touched);
  EXPECT_EQ(decoded.declared_registers, trial.declared_registers);
  EXPECT_EQ(decoded.unfinished, trial.unfinished);
  EXPECT_EQ(decoded.crash_free, trial.crash_free);
  EXPECT_EQ(decoded.completed, trial.completed);
  EXPECT_EQ(decoded.wall_seconds, trial.wall_seconds);
  EXPECT_EQ(decoded.latency, trial.latency);
  EXPECT_EQ(decoded.rmr_total, trial.rmr_total);
  EXPECT_EQ(decoded.rmr_max, trial.rmr_max);
  EXPECT_EQ(decoded.aborted, trial.aborted);
  EXPECT_EQ(decoded.retries, trial.retries);
  EXPECT_EQ(decoded.timed_out, trial.timed_out);
  EXPECT_EQ(decoded.first_violation, trial.first_violation);
}

TEST(Checkpoint, ReadRejectsTruncatedInput) {
  std::string buffer;
  exec::append_trial_summary(buffer, full_summary());
  for (const std::size_t cut : {std::size_t{0}, buffer.size() / 2,
                                buffer.size() - 1}) {
    const auto* cursor =
        reinterpret_cast<const unsigned char*>(buffer.data());
    exec::TrialSummary decoded;
    EXPECT_FALSE(exec::read_trial_summary(&cursor, cursor + cut, &decoded))
        << "cut at " << cut;
  }
}

CellCheckpoint sample_cell(int cell_index, int trials) {
  CellCheckpoint cell;
  cell.cell_index = cell_index;
  cell.ran.assign(static_cast<std::size_t>(trials), 1);
  cell.errored.assign(static_cast<std::size_t>(trials), 0);
  cell.summaries.resize(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    exec::TrialSummary trial = full_summary();
    trial.max_steps = static_cast<std::uint64_t>(100 + t);
    trial.first_violation.clear();
    cell.summaries[static_cast<std::size_t>(t)] = trial;
  }
  cell.errored[1] = 1;
  return cell;
}

TEST(Checkpoint, CellFileRoundTrips) {
  const std::string dir = fresh_temp_dir("roundtrip");
  const std::uint64_t spec_hash = 0x1234'5678'9abc'def0ull;
  std::string error;
  ASSERT_TRUE(write_cell_checkpoint(dir, spec_hash, sample_cell(3, 5), &error))
      << error;
  ASSERT_TRUE(write_checkpoint_manifest(dir, "test", spec_hash, 5, 7, &error))
      << error;
  EXPECT_TRUE(std::filesystem::exists(dir + "/CHECKPOINT.json"));

  const std::vector<CellCheckpoint> loaded =
      load_checkpoints(dir, spec_hash, /*trials=*/5, /*cells=*/7);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].cell_index, 3);
  ASSERT_EQ(loaded[0].summaries.size(), 5u);
  EXPECT_EQ(loaded[0].ran[0], 1);
  EXPECT_EQ(loaded[0].errored[1], 1);
  EXPECT_EQ(loaded[0].summaries[4].max_steps, 104u);
  EXPECT_EQ(loaded[0].summaries[0].retries, 3);
  EXPECT_TRUE(loaded[0].summaries[0].timed_out);
}

TEST(Checkpoint, SpecHashMismatchIsSkipped) {
  const std::string dir = fresh_temp_dir("spec-mismatch");
  ASSERT_TRUE(write_cell_checkpoint(dir, 111, sample_cell(0, 4), nullptr));
  EXPECT_TRUE(load_checkpoints(dir, /*spec_hash=*/222, 4, 1).empty());
  // Trial-count mismatch (the spec changed shape) is skipped the same way.
  EXPECT_TRUE(load_checkpoints(dir, 111, /*trials=*/9, 1).empty());
  EXPECT_EQ(load_checkpoints(dir, 111, 4, 1).size(), 1u);
}

TEST(Checkpoint, CorruptedFileIsSkippedNotTrusted) {
  const std::string dir = fresh_temp_dir("corrupt");
  ASSERT_TRUE(write_cell_checkpoint(dir, 42, sample_cell(0, 4), nullptr));
  const std::string path = dir + "/" + cell_checkpoint_filename(0);
  // Flip one payload byte; the trailer checksum must catch it.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(file.tellg());
  ASSERT_GT(size, 32);
  file.seekp(size / 2);
  char byte = 0;
  file.seekg(size / 2);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(size / 2);
  file.write(&byte, 1);
  file.close();
  EXPECT_TRUE(load_checkpoints(dir, 42, 4, 1).empty());
}

// ------------------------------------------------- campaign checkpointing --

campaign::CampaignSpec resume_spec() {
  campaign::CampaignSpec spec;
  spec.name = "fault-test";
  spec.algorithms = {algo::AlgorithmId::kLogStarChain,
                     algo::AlgorithmId::kRatRacePath};
  spec.adversaries = {algo::AdversaryId::kUniformRandom,
                      algo::AdversaryId::kCrashAfterOps};
  spec.ks = {4, 8};
  spec.trials = 12;
  spec.seed = 515;
  spec.seed_policy = campaign::SeedPolicy::kPerCell;
  return spec;
}

std::string all_reports(const campaign::CampaignResult& result) {
  return campaign::render_to_string(result, campaign::ReportFormat::kJsonl) +
         campaign::render_to_string(result, campaign::ReportFormat::kCsv) +
         campaign::render_to_string(result, campaign::ReportFormat::kTable);
}

TEST(CampaignCheckpoint, ResumeReproducesUninterruptedBytes) {
  const campaign::CampaignSpec spec = resume_spec();
  const std::string clean = all_reports(campaign::run_campaign(spec));

  // A fully checkpointed run renders the same bytes (checkpointing is pure
  // observation) and leaves one file per cell.
  const std::string dir = fresh_temp_dir("resume");
  campaign::ExecutorOptions options;
  options.workers = 3;
  options.checkpoint_dir = dir;
  const campaign::CampaignResult checkpointed =
      campaign::run_campaign(spec, options);
  EXPECT_EQ(all_reports(checkpointed), clean);
  EXPECT_EQ(checkpointed.cells_resumed, 0u);
  const std::size_t cells = checkpointed.cells.size();
  for (std::size_t c = 0; c < cells; ++c) {
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/" + cell_checkpoint_filename(static_cast<int>(c))))
        << "cell " << c;
  }

  // Resume with everything checkpointed: nothing re-runs, bytes identical.
  options.resume = true;
  options.workers = 2;
  const campaign::CampaignResult resumed =
      campaign::run_campaign(spec, options);
  EXPECT_EQ(resumed.cells_resumed, cells);
  EXPECT_EQ(all_reports(resumed), clean);

  // Simulate a kill that lost some cells: delete a few checkpoints; resume
  // re-runs exactly those cells and still renders identical bytes.
  std::filesystem::remove(dir + "/" + cell_checkpoint_filename(1));
  std::filesystem::remove(dir + "/" + cell_checkpoint_filename(4));
  const campaign::CampaignResult partial =
      campaign::run_campaign(spec, options);
  EXPECT_EQ(partial.cells_resumed, cells - 2);
  EXPECT_EQ(all_reports(partial), clean);
}

TEST(CampaignCheckpoint, PreSetCancelInterruptsAndStillReports) {
  const campaign::CampaignSpec spec = resume_spec();
  std::atomic<bool> cancel{true};
  campaign::ExecutorOptions options;
  options.workers = 2;
  options.cancel = &cancel;
  const std::string dir = fresh_temp_dir("interrupt");
  options.interrupt_checkpoint_dir = dir;
  const campaign::CampaignResult result =
      campaign::run_campaign(spec, options);
  EXPECT_TRUE(result.interrupted);
  // Workers stopped before claiming anything; the partial result still
  // renders (honest absence), and the fallback checkpoint dir has at least
  // its manifest so the campaign is resumable.
  for (const campaign::CellResult& cell : result.cells) {
    EXPECT_EQ(cell.trials_run, 0);
  }
  EXPECT_FALSE(
      campaign::render_to_string(result, campaign::ReportFormat::kJsonl)
          .empty());
  EXPECT_TRUE(std::filesystem::exists(dir + "/CHECKPOINT.json"));
}

TEST(CampaignChaos, WorkerDeathsLeaveReporterBytesUntouched) {
  const campaign::CampaignSpec spec = resume_spec();
  const std::string clean = all_reports(campaign::run_campaign(spec));

  campaign::ExecutorOptions options;
  options.workers = 4;
  options.fault_plan = *FaultPlan::parse("die:p=1.0", nullptr);
  campaign::CampaignResult result = campaign::run_campaign(spec, options);
  // Every mortal worker dies on its first claim check; worker 0 finishes
  // the whole campaign alone via work stealing.
  EXPECT_EQ(result.faults.worker_deaths, 3u);
  EXPECT_FALSE(result.interrupted);
  for (const campaign::CellResult& cell : result.cells) {
    EXPECT_EQ(cell.trials_run, spec.trials);
  }
  // Deaths are stderr-only; with the chaos schema gate cleared the
  // deterministic reporter bytes equal the clean run's.
  result.fault_spec.clear();
  EXPECT_EQ(all_reports(result), clean);
}

TEST(CampaignChaos, SimOnlyCampaignPlansNoParticipantFaults) {
  campaign::CampaignSpec spec = resume_spec();
  spec.trials = 4;
  campaign::ExecutorOptions options;
  options.fault_plan =
      *FaultPlan::parse("stall:p=1.0,us=10;noshow:p=0.5", nullptr);
  const campaign::CampaignResult result =
      campaign::run_campaign(spec, options);
  // Participant faults target hw elections; a sim-only grid plans none,
  // but the run still opts into the chaos schema (the plan was active).
  EXPECT_EQ(result.fault_spec, options.fault_plan.spec);
  EXPECT_EQ(result.faults.stalls, 0u);
  EXPECT_EQ(result.faults.no_shows, 0u);
  const std::string jsonl =
      campaign::render_to_string(result, campaign::ReportFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"faults\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"timed_out_runs\":0"), std::string::npos);
}

// ------------------------------------------------ crash adversary edges --

TEST(CrashAdversary, MaxCrashesExhaustsExactly) {
  sim::RoundRobinAdversary inner;
  sim::CrashInjectingAdversary adversary(inner, /*seed=*/5,
                                         /*crash_prob=*/1.0,
                                         /*max_crashes=*/3);
  const sim::LeRunResult result = sim::run_le_once(
      algo::sim_builder(algo::AlgorithmId::kLogStarChain), 8, 8, adversary, 5);
  EXPECT_EQ(adversary.crashes_injected(), 3);
  EXPECT_LE(result.winners, 1);
  EXPECT_EQ(result.unfinished, 3);
  EXPECT_FALSE(result.crash_free);
}

TEST(CrashAdversary, LastRunnableProcessIsSparedAtProbabilityOne) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::RoundRobinAdversary inner;
    sim::CrashInjectingAdversary adversary(inner, seed, /*crash_prob=*/1.0,
                                           /*max_crashes=*/1000);
    const sim::LeRunResult result = sim::run_le_once(
        algo::sim_builder(algo::AlgorithmId::kRatRacePath), 6, 6, adversary,
        seed);
    // Every decision crashes someone until one process remains; that
    // process must be spared and -- running solo -- must win.
    EXPECT_EQ(adversary.crashes_injected(), 5) << "seed " << seed;
    EXPECT_EQ(result.winners, 1) << "seed " << seed;
    EXPECT_EQ(result.unfinished, 5) << "seed " << seed;
    for (const std::string& violation : result.violations) {
      EXPECT_EQ(violation.find("safety"), std::string::npos) << violation;
    }
  }
}

TEST(CrashAdversary, CampaignBytesIdenticalAcrossWorkerCounts) {
  campaign::CampaignSpec spec;
  spec.name = "crash-workers";
  spec.algorithms = {algo::AlgorithmId::kLogStarChain,
                     algo::AlgorithmId::kCombinedSift};
  spec.adversaries = {algo::AdversaryId::kCrashAfterOps};
  spec.ks = {8, 16};
  spec.trials = 20;
  spec.seed = 17;
  spec.seed_policy = campaign::SeedPolicy::kPerCell;
  std::string reference;
  for (const int workers : {1, 4}) {
    campaign::ExecutorOptions options;
    options.workers = workers;
    const std::string bytes =
        all_reports(campaign::run_campaign(spec, options));
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "workers=" << workers;
    }
  }
  EXPECT_NE(reference.find("crashed"), std::string::npos)
      << "the crash grid must exercise the crash accounting";
}

// ----------------------------------------------------- signals and soak --

TEST(Signal, RaisedSignalSetsTheSharedFlag) {
  install_interrupt_handler();
  install_interrupt_handler();  // idempotent
  clear_interrupt_for_testing();
  EXPECT_FALSE(interrupted());
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(interrupted());
  EXPECT_TRUE(interrupt_flag()->load());
  clear_interrupt_for_testing();
  EXPECT_FALSE(interrupted());
}

TEST(Soak, PreSetCancelReturnsInterruptedPartialResult) {
  campaign::SoakSpec spec;
  spec.algorithms = {algo::AlgorithmId::kTournament};
  spec.k = 2;
  spec.duration_seconds = 5.0;  // would be way too slow if not cancelled
  spec.rate = 200.0;
  spec.seed = 9;
  std::atomic<bool> cancel{true};
  spec.cancel = &cancel;
  const std::vector<campaign::SoakResult> results =
      campaign::run_soak(spec, /*heartbeat=*/nullptr);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].interrupted);
  EXPECT_EQ(results[0].completed, 0u);
}

TEST(Soak, ChaosPlanForcesTimeoutsRetriesAndShedding) {
  // Every participant stalls 4ms against a 0.5ms deadline: the first
  // attempt of every served election must time out and retry, and with the
  // service wedged the backlog crosses the shed gate almost immediately.
  campaign::SoakSpec spec;
  spec.algorithms = {algo::AlgorithmId::kTournament};
  spec.k = 4;
  spec.duration_seconds = 0.25;
  spec.rate = 2000.0;
  spec.seed = 77;
  spec.deadline_ns = 500'000;
  spec.max_retries = 1;
  spec.backoff.base_us = 50;
  spec.backoff.cap_us = 200;
  spec.shed_backlog = 2;
  spec.faults = *FaultPlan::parse("stall:p=1.0,us=4000", nullptr);
  const std::vector<campaign::SoakResult> results =
      campaign::run_soak(spec, nullptr);
  ASSERT_EQ(results.size(), 1u);
  const campaign::SoakResult& result = results[0];
  EXPECT_GT(result.timed_out, 0u);
  EXPECT_GT(result.retried, 0u);
  EXPECT_GT(result.shed, 0u);
  EXPECT_TRUE(result.degraded);
  EXPECT_GT(result.faults.stalls, 0u);
  // Every *handled* arrival lands in exactly one outcome bucket; arrivals
  // still queued at the wall deadline are the (reported) served/planned gap.
  EXPECT_LE(result.completed + result.timed_out + result.shed, result.planned);
  EXPECT_GT(result.completed + result.timed_out + result.shed, 0u);
  // Honest absence: no completed elections means no latency samples.
  EXPECT_EQ(result.latency.count(), result.completed);
}

}  // namespace
}  // namespace rts::fault
