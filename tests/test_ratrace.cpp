// Tests for the elimination path (Claim 3.1), the original RatRace baseline,
// and the Section-3 space-efficient RatRacePath: correctness sweeps, space
// accounting (Theta(n^3) vs Theta(n)), the leaf-loading statistics of
// Claim 3.2, and crash robustness.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "algo/elim_path.hpp"
#include "algo/ratrace.hpp"
#include "algo/sim_platform.hpp"
#include "sim/runner.hpp"
#include "sim_harness.hpp"
#include "support/math.hpp"

namespace rts::algo {
namespace {

using rts::testing::SchedKind;
using rts::testing::SimHarness;
using sim::Outcome;
using P = SimPlatform;

// --- Elimination path -------------------------------------------------------

struct PathTally {
  int win = 0;
  int lose = 0;
  int forward = 0;
};

PathTally run_path(int k, int length, SchedKind sched, std::uint64_t seed) {
  SimHarness harness;
  auto path = std::make_shared<ElimPath<P>>(harness.arena(), length);
  PathTally tally;
  for (int p = 0; p < k; ++p) {
    harness.add(
        [path, &tally](sim::Context& ctx) {
          switch (path->run(ctx)) {
            case ChainOutcome::kWin:
              ++tally.win;
              break;
            case ChainOutcome::kLose:
              ++tally.lose;
              break;
            case ChainOutcome::kForward:
              ++tally.forward;
              break;
          }
        },
        support::derive_seed(seed, static_cast<std::uint64_t>(p)));
  }
  auto adversary = rts::testing::make_adversary(sched, seed);
  EXPECT_TRUE(harness.run(*adversary));
  return tally;
}

class ElimPathSweep
    : public ::testing::TestWithParam<std::tuple<int, SchedKind>> {};

TEST_P(ElimPathSweep, Claim31NoFallOffWhenSized) {
  const auto [k, sched] = GetParam();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const PathTally t = run_path(k, /*length=*/k, sched, seed);
    EXPECT_EQ(t.forward, 0)
        << "Claim 3.1: k <= length means nobody falls off";
    EXPECT_EQ(t.win, 1) << "exactly one path winner";
    EXPECT_EQ(t.lose, k - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Contention, ElimPathSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 16, 48),
                       ::testing::Values(SchedKind::kSequential,
                                         SchedKind::kRoundRobin,
                                         SchedKind::kRandom)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_" +
             rts::testing::to_string(std::get<1>(info.param));
    });

TEST(ElimPath, OverflowForwardsInsteadOfBreaking) {
  // More entrants than nodes: forwards are allowed, but never two winners.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const PathTally t = run_path(/*k=*/12, /*length=*/3,
                                 SchedKind::kRandom, seed);
    EXPECT_LE(t.win, 1);
    EXPECT_EQ(t.win + t.lose + t.forward, 12);
  }
}

TEST(ElimPath, SpaceIsFourPerNode) {
  SimHarness harness;
  ElimPath<P> path(harness.arena(), 10);
  EXPECT_EQ(path.declared_registers(), 40u);
  EXPECT_EQ(harness.kernel().memory().allocated(), 40u);
}

// --- RatRace (both variants) ------------------------------------------------

template <class RR>
sim::LeBuilder ratrace_builder() {
  return [](sim::Kernel& kernel, int n) -> sim::BuiltLe {
    SimPlatform::Arena arena(kernel.memory());
    auto le = std::make_shared<RR>(arena, n);
    sim::BuiltLe built;
    built.keepalive = le;
    built.declared_registers = le->declared_registers();
    built.elect = [le](sim::Context& ctx) { return le->elect(ctx); };
    return built;
  };
}

class RatRaceSweep
    : public ::testing::TestWithParam<std::tuple<int, SchedKind>> {};

TEST_P(RatRaceSweep, OriginalExactlyOneWinner) {
  const auto [k, sched] = GetParam();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto adversary = rts::testing::make_adversary(sched, seed);
    const auto r = sim::run_le_once(ratrace_builder<RatRaceOriginal<P>>(), k,
                                    k, *adversary, seed);
    EXPECT_TRUE(r.violations.empty()) << r.violations.front();
    EXPECT_EQ(r.winners, 1);
  }
}

TEST_P(RatRaceSweep, PathVariantExactlyOneWinner) {
  const auto [k, sched] = GetParam();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto adversary = rts::testing::make_adversary(sched, seed);
    const auto r = sim::run_le_once(ratrace_builder<RatRacePath<P>>(), k, k,
                                    *adversary, seed);
    EXPECT_TRUE(r.violations.empty()) << r.violations.front();
    EXPECT_EQ(r.winners, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Contention, RatRaceSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 6, 13, 32, 100),
                       ::testing::Values(SchedKind::kSequential,
                                         SchedKind::kRoundRobin,
                                         SchedKind::kRandom)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_" +
             rts::testing::to_string(std::get<1>(info.param));
    });

TEST(RatRace, SpaceCubicVsLinear) {
  // The headline of Section 3: Theta(n^3) declared registers for the
  // original, Theta(n) for the path variant.
  for (const int n : {16, 64, 256}) {
    SimHarness h_orig;
    RatRaceOriginal<P> orig(h_orig.arena(), n);
    SimHarness h_path;
    RatRacePath<P> path(h_path.arena(), n);

    const auto nn = static_cast<std::size_t>(n);
    EXPECT_GE(orig.declared_registers(), 2 * nn * nn * nn)
        << "tree of height 3 log n alone has ~2 n^3 nodes";
    EXPECT_LE(path.declared_registers(), 60 * nn)
        << "path variant must be linear with a modest constant";
  }
}

TEST(RatRace, LazyMaterializationTouchesFewRegisters) {
  // Although the original declares Theta(n^3) registers, a real run only
  // materializes what it touches -- and the run must touch O(k log k)-ish
  // counts, far below the declared size.
  constexpr int k = 32;
  sim::UniformRandomAdversary adversary(7);
  const auto r = sim::run_le_once(ratrace_builder<RatRaceOriginal<P>>(), k, k,
                                  adversary, 7);
  EXPECT_EQ(r.winners, 1);
  EXPECT_GT(r.declared_registers, static_cast<std::size_t>(2 * k * k * k));
  EXPECT_LT(r.regs_allocated, 4000u);
}

TEST(RatRace, StepComplexityIsLogarithmicIsh) {
  // O(log k) expected steps: going from k=8 to k=128 (16x) should grow the
  // mean max-steps by far less than 16x.
  const auto measure = [](int k) {
    const auto agg = sim::run_le_many(
        ratrace_builder<RatRacePath<P>>(), k, k,
        rts::testing::adversary_factory(SchedKind::kRandom), 40, 11);
    EXPECT_EQ(agg.violation_runs, 0);
    return agg.max_steps.mean();
  };
  const double at_8 = measure(8);
  const double at_128 = measure(128);
  EXPECT_LT(at_128, at_8 * 6.0);
}

TEST(RatRace, WonSplitterIsTrackedForCombiner) {
  constexpr int k = 8;
  SimHarness harness;
  auto rr = std::make_shared<RatRacePath<P>>(harness.arena(), k);
  std::vector<Outcome> out(k, Outcome::kUnknown);
  for (int p = 0; p < k; ++p) {
    harness.add([rr, &out, p](sim::Context& ctx) { out[p] = rr->elect(ctx); },
                static_cast<std::uint64_t>(p));
  }
  sim::UniformRandomAdversary adversary(3);
  ASSERT_TRUE(harness.run(adversary));
  // The winner must have won some splitter on its way.
  for (int p = 0; p < k; ++p) {
    if (out[p] == Outcome::kWin) EXPECT_TRUE(rr->won_splitter(p));
  }
}

TEST(RatRace, Claim32LeafLoading) {
  // Claim 3.2: for a fixed group of log n leaves, with probability 1 - 1/n^2
  // at most 4 log n processes reach those leaves.  We measure the max path
  // group loading across many trials of the tree's random descent.
  constexpr int n = 64;
  const int log_n = support::log2_ceil(n);
  const int bound = 4 * log_n;
  int overloaded_trials = 0;
  constexpr int kTrials = 300;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    // Simulate the bit-string model of the claim directly: each process's
    // fall-off leaf is determined by log n fair coin flips.
    support::PrngSource rng(seed);
    std::vector<int> group_load(
        static_cast<std::size_t>((n + log_n - 1) / log_n), 0);
    for (int p = 0; p < n; ++p) {
      const auto leaf = rng.draw(n);
      ++group_load[static_cast<std::size_t>(leaf) /
                   static_cast<std::size_t>(log_n)];
    }
    for (const int load : group_load) {
      if (load > bound) {
        ++overloaded_trials;
        break;
      }
    }
  }
  // 1/n^2 = 1/4096 per trial; over 300 trials expect ~0.07 -- allow a little.
  EXPECT_LE(overloaded_trials, 3);
}

TEST(RatRace, CrashInjectionKeepsSafety) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    sim::RoundRobinAdversary inner;
    sim::CrashInjectingAdversary adversary(inner, seed, 0.02, 4);
    const auto r = sim::run_le_once(ratrace_builder<RatRacePath<P>>(), 24, 24,
                                    adversary, seed);
    EXPECT_LE(r.winners, 1) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rts::algo
