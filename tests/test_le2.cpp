// Verification of the 2-process leader-election building block -- the
// library's substitute for the Tromp-Vitanyi object.  This is the one
// primitive everything else (LE3, chains, RatRace, tournaments) leans on,
// so it gets the heaviest treatment:
//   * deterministic solo behaviour,
//   * bounded *exhaustive* model checking over schedules x coins,
//   * randomized deep-schedule fuzzing,
//   * step-complexity statistics (O(1) expected steps),
//   * crash/starvation safety.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "algo/le2.hpp"
#include "algo/sim_platform.hpp"
#include "sim/model_check.hpp"
#include "sim_harness.hpp"
#include "support/stats.hpp"

namespace rts::algo {
namespace {

using rts::testing::SimHarness;
using rts::testing::SchedKind;
using sim::Outcome;
using P = SimPlatform;

TEST(Le2, SoloCallerWinsBothSides) {
  for (int side = 0; side < 2; ++side) {
    SimHarness harness;
    auto le = std::make_shared<Le2<P>>(harness.arena());
    Outcome out = Outcome::kUnknown;
    harness.add([le, side, &out](sim::Context& ctx) {
      out = le->elect(ctx, side);
    }, 1);
    sim::SequentialAdversary seq;
    ASSERT_TRUE(harness.run(seq));
    EXPECT_EQ(out, Outcome::kWin) << "solo caller on side " << side;
    EXPECT_LE(harness.kernel().steps(0), 8u)
        << "solo termination must be constant-step";
  }
}

TEST(Le2, SequentialSecondArriverLoses) {
  SimHarness harness;
  auto le = std::make_shared<Le2<P>>(harness.arena());
  Outcome out[2] = {Outcome::kUnknown, Outcome::kUnknown};
  for (int side = 0; side < 2; ++side) {
    harness.add([le, side, &out](sim::Context& ctx) {
      out[side] = le->elect(ctx, side);
    }, static_cast<std::uint64_t>(side) + 10);
  }
  sim::SequentialAdversary seq;  // side 0 runs to completion first
  ASSERT_TRUE(harness.run(seq));
  EXPECT_EQ(out[0], Outcome::kWin);
  EXPECT_EQ(out[1], Outcome::kLose);
}

// The heart of the file: bounded-exhaustive safety.  Every interleaving and
// every coin outcome within the decision budget is explored; after every
// single step at most one side may have won, and every completed execution
// has exactly one winner.
TEST(Le2ModelCheck, ExhaustiveSafetyWithinBudget) {
  Outcome outcomes[2];
  const auto build = [&outcomes](sim::Kernel& kernel,
                                 support::RandomSource& coins) {
    outcomes[0] = outcomes[1] = Outcome::kUnknown;
    SimPlatform::Arena arena(kernel.memory());
    auto le = std::make_shared<Le2<P>>(arena);
    for (int side = 0; side < 2; ++side) {
      kernel.add_process(
          [le, side, &outcomes](sim::Context& ctx) {
            outcomes[side] = le->elect(ctx, side);
          },
          std::make_unique<sim::SharedSource>(coins));
    }
  };
  const auto stepwise = [&outcomes](const sim::Kernel&) -> std::string {
    const int winners = (outcomes[0] == Outcome::kWin ? 1 : 0) +
                        (outcomes[1] == Outcome::kWin ? 1 : 0);
    if (winners > 1) return "two winners";
    return "";
  };
  const auto terminal = [&outcomes](const sim::Kernel&) -> std::string {
    const int winners = (outcomes[0] == Outcome::kWin ? 1 : 0) +
                        (outcomes[1] == Outcome::kWin ? 1 : 0);
    if (winners != 1) return "completed without exactly one winner";
    return "";
  };

  sim::ExploreOptions options;
  // Depth 22 covers every interleaving of the first full round plus the
  // start of round 2 -- all the single-round races the safety argument
  // worries about.  (Deeper coverage: the fuzz test below and the bench
  // bench_model_check, which runs a larger budget offline.)
  options.max_decisions = 22;
  options.max_runs = 250'000;
  const auto result = sim::explore_all(build, stepwise, terminal, options);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_GT(result.completed_runs, 1000u);
  RecordProperty("runs", static_cast<int>(result.runs));
}

TEST(Le2, RandomScheduleFuzzAlwaysOneWinner) {
  support::Accumulator max_steps;
  for (std::uint64_t seed = 0; seed < 3000; ++seed) {
    SimHarness harness;
    auto le = std::make_shared<Le2<P>>(harness.arena());
    Outcome out[2] = {Outcome::kUnknown, Outcome::kUnknown};
    for (int side = 0; side < 2; ++side) {
      harness.add([le, side, &out](sim::Context& ctx) {
        out[side] = le->elect(ctx, side);
      }, support::derive_seed(seed, static_cast<std::uint64_t>(side)));
    }
    sim::UniformRandomAdversary adversary(support::derive_seed(seed, 77));
    ASSERT_TRUE(harness.run(adversary));
    const int winners =
        (out[0] == Outcome::kWin ? 1 : 0) + (out[1] == Outcome::kWin ? 1 : 0);
    ASSERT_EQ(winners, 1) << "seed " << seed;
    max_steps.add(static_cast<double>(std::max(harness.kernel().steps(0),
                                               harness.kernel().steps(1))));
  }
  // O(1) expected steps: the empirical mean must be a small constant and the
  // distribution must have a light (geometric) tail.
  EXPECT_LT(max_steps.mean(), 12.0);
  EXPECT_LT(max_steps.quantile(0.99), 40.0);
}

TEST(Le2, StepTailDecaysGeometrically) {
  // O(1) expected steps comes from a geometric round tail: each extra round
  // survives with probability <= 1/2.  Measure the empirical tail of max
  // steps and check the decay across one round width (8 ops).
  std::vector<std::uint64_t> samples;
  constexpr int kTrials = 6000;
  samples.reserve(kTrials);
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    SimHarness harness;
    auto le = std::make_shared<Le2<P>>(harness.arena());
    for (int side = 0; side < 2; ++side) {
      harness.add([le, side](sim::Context& ctx) { le->elect(ctx, side); },
                  support::derive_seed(seed, static_cast<std::uint64_t>(side)));
    }
    sim::UniformRandomAdversary adversary(support::derive_seed(seed, 1234));
    ASSERT_TRUE(harness.run(adversary));
    samples.push_back(
        std::max(harness.kernel().steps(0), harness.kernel().steps(1)));
  }
  const auto tail = [&samples](std::uint64_t t) {
    int count = 0;
    for (const auto s : samples) count += (s >= t) ? 1 : 0;
    return static_cast<double>(count) / static_cast<double>(samples.size());
  };
  // One extra round (8 shared ops across the pair, <= 4 own ops) must cut
  // the tail by at least ~2x; allow generous slack for small-sample noise.
  const double at_12 = tail(12);
  const double at_20 = tail(20);
  const double at_28 = tail(28);
  EXPECT_GT(at_12, 0.0) << "some runs do reach a second round";
  if (at_20 > 0.01) {
    EXPECT_LT(at_28, at_20 * 0.75) << "tail must keep decaying";
  }
  EXPECT_LT(at_28, 0.05);
}

TEST(Le2, SurvivorWinsAfterPeerCrash) {
  for (int crash_side = 0; crash_side < 2; ++crash_side) {
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
      SimHarness harness;
      auto le = std::make_shared<Le2<P>>(harness.arena());
      Outcome out[2] = {Outcome::kUnknown, Outcome::kUnknown};
      for (int side = 0; side < 2; ++side) {
        harness.add([le, side, &out](sim::Context& ctx) {
          out[side] = le->elect(ctx, side);
        }, support::derive_seed(seed, static_cast<std::uint64_t>(side)));
      }
      auto& kernel = harness.kernel();
      kernel.start();
      // Let the victim take a few steps, then crash it; the survivor runs
      // alone and must terminate with a decision (win or lose -- both are
      // legal depending on what the victim's registers say).
      support::PrngSource sched(seed);
      const std::uint64_t victim_steps = sched.draw(6);
      for (std::uint64_t i = 0;
           i < victim_steps && kernel.runnable(crash_side); ++i) {
        kernel.grant(crash_side);
      }
      if (kernel.runnable(crash_side)) kernel.crash(crash_side);
      const int survivor = 1 - crash_side;
      while (kernel.runnable(survivor)) kernel.grant(survivor);
      ASSERT_EQ(kernel.state(survivor), sim::SimProcess::State::kFinished);
      ASSERT_NE(out[survivor], Outcome::kUnknown);
      const int winners = (out[0] == Outcome::kWin ? 1 : 0) +
                          (out[1] == Outcome::kWin ? 1 : 0);
      EXPECT_LE(winners, 1);
    }
  }
}

TEST(Le2, UsesExactlyTwoRegisters) {
  SimHarness harness;
  auto le = std::make_shared<Le2<P>>(harness.arena());
  EXPECT_EQ(harness.kernel().memory().allocated(), Le2<P>::kRegisters);
}

// Design-choice regression (DESIGN.md D1): the naive "race on rounds and
// win-by-lag" protocol that Le2 deliberately does NOT use is unsafe -- the
// model checker finds a two-winner execution.  This documents why the
// commit-adopt structure is necessary.
template <class PP>
class NaiveRacingLe {
 public:
  explicit NaiveRacingLe(typename PP::Arena arena) {
    reg_[0] = arena.reg("naive.R0");
    reg_[1] = arena.reg("naive.R1");
  }

  Outcome elect(typename PP::Context& ctx, int side) {
    const auto s = static_cast<std::uint64_t>(side);
    std::uint64_t r = 1;
    for (;;) {
      const std::uint64_t coin = ctx.flip();
      reg_[s].write(ctx, (r << 1) | coin);
      const std::uint64_t other = reg_[1 - s].read(ctx);
      const std::uint64_t other_round = other >> 1;
      const std::uint64_t other_coin = other & 1;
      if (other_round < r) return Outcome::kWin;   // UNSAFE win-by-lag
      if (other_round > r) return Outcome::kLose;
      if (other_coin != coin) {
        return coin == 1 ? Outcome::kWin : Outcome::kLose;
      }
      ++r;
    }
  }

 private:
  typename PP::Reg reg_[2];
};

TEST(Le2ModelCheck, NaiveRacingProtocolIsRefuted) {
  Outcome outcomes[2];
  const auto build = [&outcomes](sim::Kernel& kernel,
                                 support::RandomSource& coins) {
    outcomes[0] = outcomes[1] = Outcome::kUnknown;
    SimPlatform::Arena arena(kernel.memory());
    auto le = std::make_shared<NaiveRacingLe<P>>(arena);
    for (int side = 0; side < 2; ++side) {
      kernel.add_process(
          [le, side, &outcomes](sim::Context& ctx) {
            outcomes[side] = le->elect(ctx, side);
          },
          std::make_unique<sim::SharedSource>(coins));
    }
  };
  const auto stepwise = [&outcomes](const sim::Kernel&) -> std::string {
    if (outcomes[0] == Outcome::kWin && outcomes[1] == Outcome::kWin) {
      return "two winners";
    }
    return "";
  };
  sim::ExploreOptions options;
  options.max_decisions = 22;
  options.max_runs = 250'000;
  const auto result = sim::explore_all(
      build, stepwise, [](const sim::Kernel&) { return std::string(); },
      options);
  EXPECT_TRUE(result.violation_found)
      << "the naive protocol should admit a two-winner execution";
  EXPECT_EQ(result.violation, "two winners");
}

}  // namespace
}  // namespace rts::algo
