// Tests of the public facade: rts::TestAndSet and rts::LeaderElection.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "core/rts.hpp"

namespace rts {
namespace {

TEST(PublicApi, SingleCallerWinsTas) {
  TestAndSet::Options options;
  options.max_processes = 4;
  TestAndSet tas(options);
  EXPECT_EQ(tas.test_and_set(0), 0);
}

TEST(PublicApi, SequentialCallersGetOneZero) {
  TestAndSet::Options options;
  options.max_processes = 8;
  TestAndSet tas(options);
  int zeros = 0;
  for (int pid = 0; pid < 8; ++pid) {
    if (tas.test_and_set(pid) == 0) ++zeros;
  }
  EXPECT_EQ(zeros, 1);
}

TEST(PublicApi, ConcurrentCallersGetExactlyOneZero) {
  for (const Algorithm algorithm :
       {Algorithm::kCombinedLogStar, Algorithm::kLogStarChain,
        Algorithm::kRatRacePath, Algorithm::kTournament}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      TestAndSet::Options options;
      options.max_processes = 8;
      options.algorithm = algorithm;
      options.seed = seed;
      TestAndSet tas(options);
      std::atomic<int> zeros{0};
      std::barrier gate(8);
      std::vector<std::jthread> threads;
      for (int pid = 0; pid < 8; ++pid) {
        threads.emplace_back([&, pid] {
          gate.arrive_and_wait();
          if (tas.test_and_set(pid) == 0) zeros.fetch_add(1);
        });
      }
      threads.clear();
      EXPECT_EQ(zeros.load(), 1)
          << "algorithm " << static_cast<int>(algorithm) << " seed " << seed;
    }
  }
}

TEST(PublicApi, LeaderElectionElectsExactlyOne) {
  LeaderElection::Options options;
  options.max_processes = 6;
  LeaderElection election(options);
  int winners = 0;
  for (int pid = 0; pid < 6; ++pid) {
    if (election.elect(pid)) ++winners;
  }
  EXPECT_EQ(winners, 1);
}

TEST(PublicApi, SelectsAlgorithmsByCataloguedName) {
  // Options.algorithm_name resolves through algo::parse_algorithm against
  // the same unified catalogue rts_bench uses.
  LeaderElection::Options options;
  options.max_processes = 4;
  options.algorithm_name = "tournament";
  LeaderElection election(options);
  int winners = 0;
  for (int pid = 0; pid < 4; ++pid) {
    if (election.elect(pid)) ++winners;
  }
  EXPECT_EQ(winners, 1);

  options.algorithm_name = "no-such-algorithm";
  EXPECT_THROW(LeaderElection bad(options), Error);

  // The name, when set, wins over the id field.
  options.algorithm_name = "ratrace-path";
  options.algorithm = Algorithm::kTournament;
  LeaderElection named(options);
  TestAndSet::Options tas_options;
  tas_options.max_processes = 4;
  tas_options.algorithm = Algorithm::kRatRacePath;
  TestAndSet by_id(tas_options);
  // Same algorithm -> same declared structure size.
  EXPECT_EQ(1 + named.declared_registers(), by_id.declared_registers());
}

TEST(PublicApi, RejectsBadConfiguration) {
  LeaderElection::Options options;
  options.max_processes = 0;
  EXPECT_THROW(LeaderElection bad(options), Error);

  options.max_processes = 2;
  options.algorithm = Algorithm::kNativeAtomic;
  EXPECT_THROW(LeaderElection bad(options), Error);
}

TEST(PublicApi, EnforcesOneShotPerPid) {
  LeaderElection::Options options;
  options.max_processes = 2;
  LeaderElection election(options);
  election.elect(0);
  EXPECT_THROW(election.elect(0), Error);
  EXPECT_THROW(election.elect(7), Error);
}

TEST(PublicApi, DeclaredRegistersAreLinearForDefault) {
  TestAndSet::Options options;
  options.max_processes = 256;
  TestAndSet tas(options);
  EXPECT_LT(tas.declared_registers(), 80u * 256u)
      << "the default algorithm must be the Theta(n)-space combination";
}

TEST(PublicApi, RepeatableWithSameSeed) {
  const auto winner_with_seed = [](std::uint64_t seed) {
    LeaderElection::Options options;
    options.max_processes = 5;
    options.seed = seed;
    LeaderElection election(options);
    int winner = -1;
    for (int pid = 0; pid < 5; ++pid) {
      if (election.elect(pid)) winner = pid;
    }
    return winner;
  };
  EXPECT_EQ(winner_with_seed(42), winner_with_seed(42));
}

}  // namespace
}  // namespace rts
