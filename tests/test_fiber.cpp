// Tests for the ucontext fiber substrate: symmetric switching, completion
// routing, nesting (fiber switching into fiber), and bulk creation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fiber/fiber.hpp"
#include "fiber/stack.hpp"

namespace rts::fiber {
namespace {

TEST(Stack, AllocatesUsableMemory) {
  MmapStack stack(64 * 1024);
  ASSERT_NE(stack.base(), nullptr);
  EXPECT_GE(stack.size(), 64u * 1024u);
  // Touch the full usable range; the guard page is below base().
  auto* bytes = static_cast<char*>(stack.base());
  bytes[0] = 1;
  bytes[stack.size() - 1] = 2;
  EXPECT_EQ(bytes[0], 1);
}

TEST(Stack, MoveTransfersOwnership) {
  MmapStack a(16 * 1024);
  void* base = a.base();
  MmapStack b(std::move(a));
  EXPECT_EQ(b.base(), base);
  EXPECT_EQ(a.base(), nullptr);  // NOLINT(bugprone-use-after-move): asserted
}

TEST(Fiber, PingPong) {
  ExecutionContext main_ctx;
  std::vector<std::string> log;
  Fiber* fib_ptr = nullptr;
  Fiber fib([&] {
    log.push_back("in-1");
    switch_context(*fib_ptr, main_ctx);
    log.push_back("in-2");
  });
  fib_ptr = &fib;
  fib.set_return_to(&main_ctx);

  log.push_back("out-1");
  switch_context(main_ctx, fib);  // runs until fiber yields
  log.push_back("out-2");
  switch_context(main_ctx, fib);  // fiber finishes
  log.push_back("out-3");

  EXPECT_TRUE(fib.finished());
  const std::vector<std::string> expected = {"out-1", "in-1", "out-2", "in-2",
                                             "out-3"};
  EXPECT_EQ(log, expected);
}

TEST(Fiber, CompletionRoutesToReturnContext) {
  ExecutionContext main_ctx;
  int value = 0;
  Fiber fib([&] { value = 42; });
  fib.set_return_to(&main_ctx);
  switch_context(main_ctx, fib);
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(fib.finished());
}

TEST(Fiber, NestedFiberSwitches) {
  // parent fiber spawns a child fiber; control weaves
  // main -> parent -> child -> parent -> main.
  ExecutionContext main_ctx;
  std::vector<int> order;

  Fiber* parent_ptr = nullptr;
  Fiber parent([&] {
    order.push_back(1);
    Fiber* child_ptr = nullptr;
    Fiber child([&] {
      order.push_back(2);
      switch_context(*child_ptr, *parent_ptr);  // yield to parent
      order.push_back(4);
    });
    child_ptr = &child;
    child.set_return_to(parent_ptr);
    switch_context(*parent_ptr, child);
    order.push_back(3);
    switch_context(*parent_ptr, child);  // let child finish
    order.push_back(5);
  });
  parent_ptr = &parent;
  parent.set_return_to(&main_ctx);

  switch_context(main_ctx, parent);
  EXPECT_TRUE(parent.finished());
  const std::vector<int> expected = {1, 2, 3, 4, 5};
  EXPECT_EQ(order, expected);
}

TEST(Fiber, ManyFibersRoundRobin) {
  constexpr int kFibers = 200;
  constexpr int kRounds = 10;
  ExecutionContext main_ctx;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> counters(kFibers, 0);
  fibers.reserve(kFibers);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(nullptr);  // placeholder for index stability
  }
  for (int i = 0; i < kFibers; ++i) {
    fibers[i] = std::make_unique<Fiber>([&, i] {
      for (int r = 0; r < kRounds; ++r) {
        ++counters[i];
        switch_context(*fibers[i], main_ctx);
      }
    });
    fibers[i]->set_return_to(&main_ctx);
  }
  for (int r = 0; r <= kRounds; ++r) {
    for (int i = 0; i < kFibers; ++i) {
      if (!fibers[i]->finished()) switch_context(main_ctx, *fibers[i]);
    }
  }
  for (int i = 0; i < kFibers; ++i) {
    EXPECT_TRUE(fibers[i]->finished());
    EXPECT_EQ(counters[i], kRounds);
  }
}

TEST(Fiber, RewindReplaysFromTheEntryPoint) {
  ExecutionContext main_ctx;
  int runs = 0;
  Fiber fib([&] { ++runs; });
  fib.set_return_to(&main_ctx);
  switch_context(main_ctx, fib);
  EXPECT_TRUE(fib.finished());
  fib.rewind();
  EXPECT_FALSE(fib.finished());
  switch_context(main_ctx, fib);
  EXPECT_TRUE(fib.finished());
  EXPECT_EQ(runs, 2);
}

TEST(Fiber, RewindRecoversAnAbandonedFiber) {
  // A fiber suspended mid-run (the shape a starved simulated process leaves
  // behind) rewinds to a fresh first activation.
  ExecutionContext main_ctx;
  Fiber* fib_ptr = nullptr;
  int phase1 = 0;
  int phase2 = 0;
  Fiber fib([&] {
    ++phase1;
    switch_context(*fib_ptr, main_ctx);
    ++phase2;
  });
  fib_ptr = &fib;
  fib.set_return_to(&main_ctx);
  switch_context(main_ctx, fib);  // runs phase1, suspends
  EXPECT_EQ(phase1, 1);
  fib.rewind();                   // abandon the suspended frame
  switch_context(main_ctx, fib);  // phase1 again
  switch_context(main_ctx, fib);  // phase2, finishes
  EXPECT_TRUE(fib.finished());
  EXPECT_EQ(phase1, 2);
  EXPECT_EQ(phase2, 1);
}

TEST(Fiber, AdoptsACallerOwnedStack) {
  MmapStack stack(64 * 1024);
  void* base = stack.base();
  ExecutionContext main_ctx;
  int value = 0;
  Fiber fib([&] { value = 7; }, std::move(stack));
  fib.set_return_to(&main_ctx);
  switch_context(main_ctx, fib);
  EXPECT_EQ(value, 7);
  EXPECT_TRUE(fib.finished());
  EXPECT_NE(base, nullptr);
}

TEST(Fiber, AbandonedFiberIsSafelyDestroyed) {
  ExecutionContext main_ctx;
  Fiber* fib_ptr = nullptr;
  {
    Fiber fib([&] {
      switch_context(*fib_ptr, main_ctx);
      ADD_FAILURE() << "abandoned fiber must never be resumed";
    });
    fib_ptr = &fib;
    fib.set_return_to(&main_ctx);
    switch_context(main_ctx, fib);
    EXPECT_FALSE(fib.finished());
    // fib goes out of scope while suspended: stack is released, no resume.
  }
  SUCCEED();
}

}  // namespace
}  // namespace rts::fiber
