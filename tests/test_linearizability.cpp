// Linearizability checks for the one-shot TAS built from leader election.
//
// For one-shot TAS the linearizability conditions reduce to:
//   (L1) exactly one caller returns 0;
//   (L2) no call that returns 1 may *complete* before the winning call
//        *starts* -- otherwise the 1 it returned had no linearization point
//        (the bit was still 0 for its entire duration).
// We record call intervals in kernel-step time via an op observer and check
// both conditions across adversaries, seeds, and algorithms.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algo/chain.hpp"
#include "algo/sim_platform.hpp"
#include "algo/tas.hpp"
#include "algo/tournament.hpp"
#include "sim_harness.hpp"

namespace rts::algo {
namespace {

using rts::testing::SchedKind;
using P = SimPlatform;

struct CallInterval {
  std::uint64_t first_step = UINT64_MAX;
  std::uint64_t last_step = 0;
  int result = -1;
};

template <class MakeLe>
void check_linearizability(const MakeLe& make_le, int k, SchedKind sched,
                           std::uint64_t seed) {
  sim::Kernel kernel;
  P::Arena arena(kernel.memory());
  auto tas = std::make_shared<TasFromLe<P>>(arena, make_le(arena, k));

  std::vector<CallInterval> calls(static_cast<std::size_t>(k));
  kernel.set_op_observer([&calls](const sim::OpRecord& record) {
    auto& call = calls[static_cast<std::size_t>(record.pid)];
    call.first_step = std::min(call.first_step, record.step);
    call.last_step = std::max(call.last_step, record.step);
  });

  for (int pid = 0; pid < k; ++pid) {
    kernel.add_process(
        [tas, &calls, pid](sim::Context& ctx) {
          calls[static_cast<std::size_t>(pid)].result = tas->tas(ctx);
        },
        std::make_unique<support::PrngSource>(
            support::derive_seed(seed, pid)));
  }
  auto adversary = rts::testing::make_adversary(sched, seed);
  ASSERT_TRUE(kernel.run(*adversary));

  // (L1) exactly one zero.
  int winner = -1;
  for (int pid = 0; pid < k; ++pid) {
    ASSERT_NE(calls[static_cast<std::size_t>(pid)].result, -1);
    if (calls[static_cast<std::size_t>(pid)].result == 0) {
      EXPECT_EQ(winner, -1) << "two zeros";
      winner = pid;
    }
  }
  ASSERT_NE(winner, -1) << "no zero";

  // (L2) every returned 1 must be concurrent with or after the winner's
  // call: loser.last_step >= winner.first_step.
  const auto& wcall = calls[static_cast<std::size_t>(winner)];
  for (int pid = 0; pid < k; ++pid) {
    if (pid == winner) continue;
    const auto& call = calls[static_cast<std::size_t>(pid)];
    EXPECT_GE(call.last_step, wcall.first_step)
        << "process " << pid << " returned 1 but completed before the "
        << "winner started -- not linearizable";
  }
}

std::unique_ptr<ILeaderElect<P>> make_chain(P::Arena arena, int n) {
  return std::make_unique<GeChainLe<P>>(
      arena, n, fig1_truncated_factory<P>(n, default_live_prefix(n)));
}

std::unique_ptr<ILeaderElect<P>> make_tournament(P::Arena arena, int n) {
  return std::make_unique<TournamentLe<P>>(arena, n);
}

class TasLinearizability
    : public ::testing::TestWithParam<std::tuple<int, SchedKind>> {};

TEST_P(TasLinearizability, ChainBased) {
  const auto [k, sched] = GetParam();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    check_linearizability(make_chain, k, sched, seed);
  }
}

TEST_P(TasLinearizability, TournamentBased) {
  const auto [k, sched] = GetParam();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    check_linearizability(make_tournament, k, sched, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TasLinearizability,
    ::testing::Combine(::testing::Values(2, 3, 8, 24),
                       ::testing::Values(SchedKind::kSequential,
                                         SchedKind::kRoundRobin,
                                         SchedKind::kRandom)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_" +
             rts::testing::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace rts::algo
