// Tests of the lower-bound drivers.
//
// Covering argument (Theorem 5.1): the construction must complete against
// our leader-election algorithms and end with at least log2(n) - 1 distinct
// covered registers -- the paper's bound, witnessed on real executions.
//
// Two-process time bound (Theorem 6.1): max-over-schedules probability of
// needing t steps must dominate 1/4^t.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "lowerbound/covering.hpp"
#include "lowerbound/two_proc.hpp"
#include "support/math.hpp"

namespace rts::lb {
namespace {

class CoveringOnAlgorithms
    : public ::testing::TestWithParam<algo::AlgorithmId> {};

TEST_P(CoveringOnAlgorithms, WitnessesLogNBoundAtN16) {
  const CoveringResult r = run_covering_argument(GetParam(), 16, /*seed=*/1);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.paper_bound, 3);
  EXPECT_GE(r.covered_registers, r.paper_bound)
      << "the construction must cover at least log2(n) - 1 registers";
  EXPECT_GE(r.final_groups, 4 * (support::log2_ceil(16) - 1))
      << "Lemma 5.4/Claim 5.5: m_{n-4} >= 4(log n - 1)";
}

INSTANTIATE_TEST_SUITE_P(
    Algos, CoveringOnAlgorithms,
    ::testing::Values(algo::AlgorithmId::kLogStarChain,
                      algo::AlgorithmId::kRatRacePath,
                      algo::AlgorithmId::kTournament),
    [](const auto& info) {
      std::string name = algo::info(info.param).name;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Covering, BoundGrowsWithN) {
  int previous_covered = 0;
  for (const int n : {8, 16, 32}) {
    const CoveringResult r =
        run_covering_argument(algo::AlgorithmId::kLogStarChain, n, 7);
    ASSERT_TRUE(r.ok) << "n=" << n << ": " << r.error;
    EXPECT_GE(r.covered_registers,
              support::log2_ceil(static_cast<std::uint64_t>(n)) - 1);
    EXPECT_GE(r.covered_registers, previous_covered);
    previous_covered = r.covered_registers;
  }
}

TEST(Covering, MonotoneGroupHistory) {
  const CoveringResult r =
      run_covering_argument(algo::AlgorithmId::kLogStarChain, 16, 3);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_FALSE(r.m_history.empty());
  EXPECT_EQ(r.m_history.front(), 16) << "m_0 = n";
  for (std::size_t i = 1; i < r.m_history.size(); ++i) {
    EXPECT_LE(r.m_history[i], r.m_history[i - 1])
        << "groups only ever merge";
  }
}

TEST(Covering, RejectsBadN) {
  const CoveringResult odd =
      run_covering_argument(algo::AlgorithmId::kLogStarChain, 12, 1);
  EXPECT_FALSE(odd.ok);
  const CoveringResult tiny =
      run_covering_argument(algo::AlgorithmId::kLogStarChain, 4, 1);
  EXPECT_FALSE(tiny.ok);
}

TEST(Covering, DifferentSeedsStillWitnessBound) {
  // The proof fixes arbitrary coins; any seed must yield the bound.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const CoveringResult r =
        run_covering_argument(algo::AlgorithmId::kLogStarChain, 16, seed);
    ASSERT_TRUE(r.ok) << "seed " << seed << ": " << r.error;
    EXPECT_GE(r.covered_registers, 3) << "seed " << seed;
  }
}

TEST(Claim55, RecurrenceMatchesClosedForm) {
  // The paper's Section-5 counting: f(0) = n, f(k+1) = f(k) - floor(f(k) /
  // (n-k)) + 1.  Claim 5.5(a): for k in I(s) = [n - n/2^s, n - n/2^(s+1)),
  // f(k) = n(s+1)/2^s - s(k - n + n/2^s); in particular f(n-4) =
  // 4(log2 n - 1).  Verify the closed form against the recurrence directly.
  for (const int n : {8, 16, 64, 256, 1024}) {
    std::vector<std::int64_t> f(static_cast<std::size_t>(n));
    f[0] = n;
    for (int k = 0; k + 1 < n; ++k) {
      f[static_cast<std::size_t>(k + 1)] =
          f[static_cast<std::size_t>(k)] -
          f[static_cast<std::size_t>(k)] / (n - k) + 1;
    }
    // Closed form on every k < n - 4.
    for (int s = 0; (n >> s) >= 2; ++s) {
      const int lo = n - (n >> s);
      const int hi = n - (n >> (s + 1));  // exclusive
      for (int k = lo; k < hi && k <= n - 4; ++k) {
        const std::int64_t expected =
            static_cast<std::int64_t>(n) * (s + 1) / (1LL << s) -
            static_cast<std::int64_t>(s) * (k - n + (n >> s));
        EXPECT_EQ(f[static_cast<std::size_t>(k)], expected)
            << "n=" << n << " s=" << s << " k=" << k;
      }
    }
    EXPECT_EQ(f[static_cast<std::size_t>(n - 4)],
              4 * (support::log2_ceil(static_cast<std::uint64_t>(n)) - 1))
        << "f(n-4) = 4(log n - 1) at n=" << n;
  }
}

// --- Theorem 6.1 ------------------------------------------------------------

TEST(TwoProcLb, MaxProbabilityDominatesBound) {
  const auto rows =
      run_two_proc_lb({1, 2, 3, 4, 5}, /*trials_per_schedule=*/60,
                      /*max_schedules=*/1000, /*seed=*/5);
  ASSERT_EQ(rows.size(), 5u);
  for (const auto& row : rows) {
    EXPECT_TRUE(row.exhaustive) << "t=" << row.t;
    EXPECT_GE(row.max_prob, row.bound)
        << "t=" << row.t
        << ": the theorem guarantees some schedule reaches 1/4^t";
    EXPECT_LE(row.min_prob, row.max_prob);
  }
  // t = 1 is trivially certain: every TAS call takes at least one step.
  EXPECT_DOUBLE_EQ(rows.front().max_prob, 1.0);
}

TEST(TwoProcLb, SampledSchedulesForLargerT) {
  const auto rows = run_two_proc_lb({8}, /*trials_per_schedule=*/40,
                                    /*max_schedules=*/64, /*seed=*/9);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows.front().exhaustive);
  EXPECT_EQ(rows.front().schedules, 64);
  EXPECT_GE(rows.front().max_prob, rows.front().bound);
}

TEST(TwoProcLb, ProbabilityDecaysWithT) {
  const auto rows = run_two_proc_lb({4, 10, 14}, 200, 128, 11);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_GE(rows[0].max_prob, rows[2].max_prob)
      << "needing more steps must not become more likely";
}

}  // namespace
}  // namespace rts::lb
