// Tests for the telemetry layer: LatencyHistogram bucket geometry and
// order-independent merge, perf-counter graceful degradation (unavailable
// is *absent*, never fabricated zeros), soak preset integrity, the shared
// heartbeat formatter, and sim-backend latency-percentile reproducibility
// across executor worker counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/reporter.hpp"
#include "campaign/soak.hpp"
#include "campaign/spec.hpp"
#include "exec/backend.hpp"
#include "support/assert.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/perf_counters.hpp"

namespace rts::telemetry {
namespace {

using Histogram = LatencyHistogram;

// ------------------------------------------------------------ histogram --

TEST(LatencyHistogram, SmallValuesBinExactly) {
  // The identity region: one bucket per value below kSubBucketCount, and
  // the first octave above it still has width-1 buckets.
  for (std::uint64_t v = 0; v < 2 * Histogram::kSubBucketCount; ++v) {
    const std::size_t index = Histogram::bucket_index(v);
    EXPECT_EQ(Histogram::bucket_lower(index), v) << v;
    EXPECT_EQ(Histogram::bucket_upper(index), v) << v;
  }
}

TEST(LatencyHistogram, BucketBoundariesTileTheRange) {
  // Walk every bucket: lowers are contiguous with the previous upper, the
  // index map inverts the bounds, and widths double each octave.
  std::uint64_t expected_lower = 0;
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t lower = Histogram::bucket_lower(i);
    const std::uint64_t upper = Histogram::bucket_upper(i);
    EXPECT_EQ(lower, expected_lower) << "bucket " << i;
    EXPECT_GE(upper, lower);
    EXPECT_EQ(Histogram::bucket_index(lower), i);
    EXPECT_EQ(Histogram::bucket_index(upper), i);
    if (upper == UINT64_MAX) {
      EXPECT_EQ(i, Histogram::kBucketCount - 1);
      break;
    }
    expected_lower = upper + 1;
  }
  EXPECT_EQ(Histogram::bucket_upper(Histogram::kBucketCount - 1), UINT64_MAX);
}

TEST(LatencyHistogram, PowerOfTwoBoundariesStartNewOctaves) {
  for (unsigned e = Histogram::kSubBucketBits; e < 64; ++e) {
    const std::uint64_t boundary = std::uint64_t{1} << e;
    EXPECT_EQ(Histogram::bucket_index(boundary),
              Histogram::bucket_index(boundary - 1) + 1)
        << "octave " << e;
    EXPECT_EQ(Histogram::bucket_lower(Histogram::bucket_index(boundary)),
              boundary);
  }
}

TEST(LatencyHistogram, QuantizationErrorIsBoundedPerOctave) {
  // Log-linear promise: bucket width <= lower / kSubBucketCount, i.e. the
  // relative error of reporting a bucket upper bound is < ~3%.
  for (std::size_t i = Histogram::kSubBucketCount;
       i < Histogram::kBucketCount; i += 7) {
    const std::uint64_t lower = Histogram::bucket_lower(i);
    const std::uint64_t width = Histogram::bucket_upper(i) - lower + 1;
    EXPECT_LE(width, std::max<std::uint64_t>(
                         1, lower / Histogram::kSubBucketCount))
        << "bucket " << i;
  }
}

TEST(LatencyHistogram, EmptyHistogramReportsZeros) {
  const Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.p999(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SingleSampleIsEveryPercentile) {
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{17},
                                std::uint64_t{12345},
                                std::uint64_t{9'999'999'999}}) {
    Histogram h;
    h.record(v);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), v);
    EXPECT_EQ(h.max(), v);
    // Quantization clamps to the tracked max, so even a mid-bucket sample
    // reports exactly itself.
    EXPECT_EQ(h.percentile(0.0), v);
    EXPECT_EQ(h.p50(), v);
    EXPECT_EQ(h.p999(), v);
    EXPECT_EQ(h.percentile(1.0), v);
  }
}

TEST(LatencyHistogram, ExactPercentilesInTheIdentityRegion) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 20; ++v) h.record(v);  // 1..20, exact
  // Nearest-rank: p50 of 20 samples is the 10th smallest.
  EXPECT_EQ(h.p50(), 10u);
  EXPECT_EQ(h.p90(), 18u);
  EXPECT_EQ(h.p99(), 20u);
  EXPECT_EQ(h.percentile(0.25), 5u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 20u);
  EXPECT_DOUBLE_EQ(h.mean(), 10.5);
}

TEST(LatencyHistogram, MergeIsExactAndOrderIndependent) {
  std::mt19937_64 rng(42);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 3000; ++i) {
    // Mix of magnitudes so several octaves are populated.
    const int octave = static_cast<int>(rng() % 30);
    values.push_back(rng() % ((std::uint64_t{2} << octave)));
  }

  Histogram whole;
  for (const std::uint64_t v : values) whole.record(v);

  // Shard the same stream three ways, then merge in two different orders.
  Histogram parts[3];
  for (std::size_t i = 0; i < values.size(); ++i) {
    parts[i % 3].record(values[i]);
  }
  Histogram forward;
  forward.merge(parts[0]);
  forward.merge(parts[1]);
  forward.merge(parts[2]);
  Histogram backward;
  backward.merge(parts[2]);
  backward.merge(parts[1]);
  backward.merge(parts[0]);

  for (const Histogram* merged : {&forward, &backward}) {
    EXPECT_EQ(merged->count(), whole.count());
    EXPECT_EQ(merged->min(), whole.min());
    EXPECT_EQ(merged->max(), whole.max());
    EXPECT_DOUBLE_EQ(merged->mean(), whole.mean());
    for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      EXPECT_EQ(merged->percentile(q), whole.percentile(q)) << q;
    }
  }
  // Bucket-exact, not just percentile-equal.
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    ASSERT_EQ(forward.bucket_count_at(i), whole.bucket_count_at(i)) << i;
    ASSERT_EQ(backward.bucket_count_at(i), whole.bucket_count_at(i)) << i;
  }
}

TEST(LatencyHistogram, MergingAnEmptyHistogramIsIdentity) {
  Histogram h;
  h.record(100);
  const std::uint64_t before = h.p50();
  Histogram empty;
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.p50(), before);
  empty.merge(h);  // and merging *into* an empty one adopts the counts
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.p50(), before);
}

// --------------------------------------------------------- perf counters --

TEST(PerfCounts, DefaultIsUnavailableNotZero) {
  const PerfCounts counts;
  EXPECT_FALSE(counts.any());
  EXPECT_EQ(counts.samples, 0u);
  for (std::size_t i = 0; i < PerfCounts::kCounters; ++i) {
    EXPECT_FALSE(counts.valid[i]);
  }
}

TEST(PerfCounts, CounterNamesAreStable) {
  EXPECT_STREQ(PerfCounts::name(0), "cycles");
  EXPECT_STREQ(PerfCounts::name(1), "instructions");
  EXPECT_STREQ(PerfCounts::name(2), "cache_misses");
  EXPECT_STREQ(PerfCounts::name(3), "dtlb_misses");
}

TEST(PerfCounts, AddSumsValidCountersAndPoisonsMismatches) {
  PerfCounts a;
  a.samples = 1;
  a.valid = {true, true, false, false};
  a.value = {100, 200, 0, 0};
  PerfCounts b;
  b.samples = 1;
  b.valid = {true, false, false, false};
  b.value = {10, 999, 0, 0};

  PerfCounts sum = a;
  sum.add(b);
  EXPECT_EQ(sum.samples, 2u);
  EXPECT_TRUE(sum.valid[0]);
  EXPECT_EQ(sum.value[0], 110u);
  // b never measured instructions: the sum must not pretend it did.
  EXPECT_FALSE(sum.valid[1]);
  EXPECT_EQ(sum.value[1], 0u);
  EXPECT_FALSE(sum.valid[2]);

  // Folding into an empty accumulator adopts the other side verbatim.
  PerfCounts empty;
  empty.add(a);
  EXPECT_EQ(empty.samples, 1u);
  EXPECT_TRUE(empty.valid[0]);
  EXPECT_EQ(empty.value[0], 100u);
}

TEST(PerfCounterGroup, DegradesGracefullyWhereverItRuns) {
  // On a machine (or container) without perf_event access the group must
  // report unavailable -- and stop() must return all-invalid counts, not
  // zeros.  Where perf *is* available, a start/stop cycle must produce a
  // one-sample reading with a nonzero cycle count.
  PerfCounterGroup group;
  if (!group.available()) {
    group.start();  // no-ops, must not crash
    const PerfCounts counts = group.stop();
    EXPECT_FALSE(counts.any());
    EXPECT_EQ(counts.samples, 0u);
  } else {
    group.start();
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i);
    }
    const PerfCounts counts = group.stop();
    EXPECT_EQ(counts.samples, 1u);
    ASSERT_TRUE(counts.valid[0]);
    EXPECT_GT(counts.value[0], 0u) << "cycles";
  }
}

}  // namespace
}  // namespace rts::telemetry

namespace rts::campaign {
namespace {

CampaignSpec sim_spec() {
  CampaignSpec spec;
  spec.name = "telemetry-test";
  spec.algorithms = {algo::AlgorithmId::kLogStarChain,
                     algo::AlgorithmId::kCombinedSift};
  spec.adversaries = {algo::AdversaryId::kUniformRandom};
  spec.ks = {3, 8};
  spec.trials = 12;
  spec.seed = 99;
  return spec;
}

TEST(TelemetryCampaign, SimLatencyIsTheMaxStepDistribution) {
  ExecutorOptions options;
  options.workers = 1;
  const CampaignResult result = run_campaign(sim_spec(), options);
  for (const CellResult& cell : result.cells) {
    const telemetry::LatencyHistogram& latency = cell.agg.latency;
    ASSERT_EQ(latency.count(),
              static_cast<std::uint64_t>(cell.trials_run));
    // Sim latency records per-trial max steps, so the extremes must agree
    // with the max_steps accumulator exactly.
    EXPECT_EQ(static_cast<double>(latency.max()), cell.agg.max_steps.max());
    EXPECT_EQ(static_cast<double>(latency.min()), cell.agg.max_steps.min());
    // Sim cells never measure hardware counters.
    EXPECT_FALSE(cell.perf.any());
  }
}

TEST(TelemetryCampaign, LatencyPercentilesAreWorkerCountInvariant) {
  ExecutorOptions serial;
  serial.workers = 1;
  const CampaignResult one = run_campaign(sim_spec(), serial);
  ExecutorOptions wide;
  wide.workers = 8;
  const CampaignResult eight = run_campaign(sim_spec(), wide);

  ASSERT_EQ(one.cells.size(), eight.cells.size());
  for (std::size_t c = 0; c < one.cells.size(); ++c) {
    const telemetry::LatencyHistogram& a = one.cells[c].agg.latency;
    const telemetry::LatencyHistogram& b = eight.cells[c].agg.latency;
    ASSERT_EQ(a.count(), b.count());
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(a.percentile(q), b.percentile(q)) << "cell " << c;
    }
    EXPECT_EQ(a.max(), b.max());
  }
  // And the rendered bytes -- percentiles included -- are identical.
  EXPECT_EQ(render_to_string(one, ReportFormat::kJsonl),
            render_to_string(eight, ReportFormat::kJsonl));
  EXPECT_EQ(render_to_string(one, ReportFormat::kCsv),
            render_to_string(eight, ReportFormat::kCsv));
}

TEST(TelemetryCampaign, JsonlAndCsvCarryTheLatencyBlock) {
  ExecutorOptions options;
  options.workers = 2;
  const CampaignResult result = run_campaign(sim_spec(), options);
  const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"latency\":{\"unit\":\"steps\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"p999\":"), std::string::npos);
  // Sim-only campaigns keep the historical non-extended schema.
  EXPECT_EQ(jsonl.find("backend"), std::string::npos);
  EXPECT_EQ(jsonl.find("perf"), std::string::npos);
  const std::string csv = render_to_string(result, ReportFormat::kCsv);
  EXPECT_NE(csv.find(",latency_unit,latency_p50,latency_p90,latency_p99,"
                     "latency_p999,latency_max"),
            std::string::npos);
  EXPECT_NE(csv.find(",steps,"), std::string::npos);
}

TEST(TelemetryCampaign, PerfBlockIsAbsentUnlessMeasured) {
  // Hand-build an extended-schema campaign result: one hw cell whose perf
  // counters were *not* measured, one whose counters were.  The jsonl
  // reporter must omit the block entirely for the first and emit only the
  // valid fields for the second -- absent, never fabricated zeros.
  CampaignSpec spec;
  spec.name = "perf-test";
  spec.backends = {exec::Backend::kHw};
  spec.algorithms = {algo::AlgorithmId::kTournament,
                     algo::AlgorithmId::kNativeAtomic};
  spec.adversaries = {algo::AdversaryId::kUniformRandom};
  spec.ks = {2};
  spec.trials = 1;

  CampaignResult result;
  result.spec = spec;
  const std::vector<CellSpec> cells = expand(spec);
  ASSERT_EQ(cells.size(), 2u);
  for (const CellSpec& cell : cells) {
    CellResult cell_result;
    cell_result.cell = cell;
    exec::TrialSummary trial;
    trial.backend = exec::Backend::kHw;
    trial.k = cell.k;
    trial.max_steps = 4;
    trial.total_steps = 8;
    trial.wall_seconds = 1e-6;
    trial.latency = 1000;
    exec::accumulate_trial(cell_result.agg, trial);
    cell_result.trials_run = 1;
    result.cells.push_back(std::move(cell_result));
  }
  // Cell 1 measured cycles + instructions but not the cache counters.
  result.cells[1].perf.samples = 2;
  result.cells[1].perf.valid = {true, true, false, false};
  result.cells[1].perf.value = {1234, 5678, 0, 0};

  const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
  const std::size_t first_cell = jsonl.find("\"algorithm\":\"tournament\"");
  const std::size_t second_cell =
      jsonl.find("\"algorithm\":\"native-atomic\"");
  ASSERT_NE(first_cell, std::string::npos);
  ASSERT_NE(second_cell, std::string::npos);
  const std::string first_line =
      jsonl.substr(first_cell, second_cell - first_cell);
  EXPECT_EQ(first_line.find("\"perf\""), std::string::npos)
      << "unmeasured counters must be absent, not zero";
  const std::string second_line = jsonl.substr(second_cell);
  EXPECT_NE(second_line.find("\"perf\":{\"samples\":2,\"cycles\":1234,"
                             "\"instructions\":5678}"),
            std::string::npos);
  EXPECT_EQ(second_line.find("cache_misses"), std::string::npos);
  EXPECT_EQ(second_line.find("dtlb_misses"), std::string::npos);

  // CSV: perf columns exist in the extended schema, but unmeasured cells
  // leave them empty.
  const std::string csv = render_to_string(result, ReportFormat::kCsv);
  EXPECT_NE(csv.find(",perf_samples,perf_cycles,perf_instructions,"
                     "perf_cache_misses,perf_dtlb_misses"),
            std::string::npos);
  EXPECT_NE(csv.find(",0,,,,\n"), std::string::npos)
      << "unmeasured counters must render as empty cells";
  EXPECT_NE(csv.find(",2,1234,5678,,\n"), std::string::npos);
}

// ------------------------------------------------------------------ soak --

TEST(Soak, PresetRegistryHasTheSmokeEntry) {
  const SoakPreset* smoke = find_soak_preset("soak-smoke");
  ASSERT_NE(smoke, nullptr);
  EXPECT_EQ(smoke->spec.algorithms.size(), 2u);
  EXPECT_DOUBLE_EQ(smoke->spec.duration_seconds, 2.0);
  EXPECT_LE(smoke->spec.rate, 1000.0) << "smoke preset must stay low-rate";
  for (const algo::AlgorithmId id : smoke->spec.algorithms) {
    EXPECT_TRUE(algo::supports(id, exec::Backend::kHw));
  }
  EXPECT_EQ(find_soak_preset("no-such-soak"), nullptr);
  for (const SoakPreset& preset : all_soak_presets()) {
    EXPECT_EQ(find_soak_preset(preset.name), &preset);
    for (const algo::AlgorithmId id : preset.spec.algorithms) {
      EXPECT_TRUE(algo::supports(id, exec::Backend::kHw)) << preset.name;
    }
  }
}

TEST(Soak, ShortSoakServesTheScheduleAndMeasuresLatency) {
  SoakSpec spec;
  spec.name = "soak-unit";
  spec.algorithms = {algo::AlgorithmId::kNativeAtomic};
  spec.k = 2;
  spec.duration_seconds = 0.3;
  spec.rate = 200.0;
  spec.seed = 7;
  const std::vector<SoakResult> results = run_soak(spec, nullptr);
  ASSERT_EQ(results.size(), 1u);
  const SoakResult& result = results.front();
  EXPECT_EQ(result.planned, 60u);
  EXPECT_GT(result.completed, 0u);
  EXPECT_LE(result.completed, result.planned);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.latency.count(), result.completed);
  EXPECT_GT(result.latency.p50(), 0u);
  EXPECT_GE(result.latency.p999(), result.latency.p50());
}

TEST(Soak, RejectsConfigurationsTheHardwareCannotRun) {
  SoakSpec spec;
  spec.algorithms = {algo::AlgorithmId::kNativeAtomic};
  spec.rate = 0.0;  // open loop needs an arrival rate
  EXPECT_THROW(run_soak_one(spec, spec.algorithms.front(), nullptr), Error);
  spec.rate = 100.0;
  spec.duration_seconds = 0.0;
  EXPECT_THROW(run_soak_one(spec, spec.algorithms.front(), nullptr), Error);
}

TEST(Soak, HeartbeatLineSharedFormat) {
  EXPECT_EQ(heartbeat_line("soak", 2.0, 100, 400, "elections", "backlog 3"),
            "[soak] 2.0s  100/400 elections  50 elections/s  backlog 3");
  EXPECT_EQ(heartbeat_line("tag", 0.0, 0, 0, "trials", ""),
            "[tag] 0.0s  0 trials  0 trials/s");
}

TEST(Soak, FormatNsPicksHumanUnits)  {
  EXPECT_EQ(format_ns(999), "999ns");
  EXPECT_EQ(format_ns(1500), "1.5us");
  EXPECT_EQ(format_ns(2'500'000), "2.50ms");
  EXPECT_EQ(format_ns(3'000'000'000), "3.00s");
}

}  // namespace
}  // namespace rts::campaign
