// Demonstrates that adversary *information*, not scheduling cleverness, is
// what separates the paper's adversary classes: the identical
// GreedySlotAdversary strategy elects (nearly) everyone in a Figure-1 group
// election when run as an adaptive adversary (it sees the random slot
// writes), but obeys Lemma 2.2's logarithmic bound when run as a
// location-oblivious adversary (the kernel hides those targets).
#include <gtest/gtest.h>

#include <memory>

#include "algo/group_elect.hpp"
#include "algo/sim_platform.hpp"
#include "sim/adversaries_greedy.hpp"
#include "sim_harness.hpp"
#include "support/math.hpp"
#include "support/stats.hpp"

namespace rts::algo {
namespace {

using rts::testing::SimHarness;
using P = SimPlatform;

double mean_elected_under(sim::AdversaryClass clazz, int k, int trials) {
  support::Accumulator elected;
  for (int trial = 0; trial < trials; ++trial) {
    SimHarness harness;
    auto ge = std::make_shared<Fig1GroupElect<P>>(harness.arena(), k);
    auto count = std::make_shared<int>(0);
    for (int pid = 0; pid < k; ++pid) {
      harness.add(
          [ge, count](sim::Context& ctx) {
            if (ge->elect(ctx)) ++*count;
          },
          support::derive_seed(trial, pid));
    }
    sim::GreedySlotAdversary adversary(clazz);
    EXPECT_TRUE(harness.run(adversary));
    elected.add(static_cast<double>(*count));
  }
  return elected.mean();
}

TEST(AdversaryPower, InformationIsTheOnlyDifference) {
  constexpr int k = 64;
  constexpr int kTrials = 150;
  const double adaptive =
      mean_elected_under(sim::AdversaryClass::kAdaptive, k, kTrials);
  const double location_oblivious =
      mean_elected_under(sim::AdversaryClass::kLocationOblivious, k, kTrials);

  // With full information the greedy strategy elects nearly everyone...
  EXPECT_GT(adaptive, 0.8 * k);
  // ...while the class filter alone restores the Lemma 2.2 regime.
  EXPECT_LT(location_oblivious,
            support::fig1_performance_bound(k) + 3.0);
  EXPECT_GT(adaptive, 4.0 * location_oblivious);
}

TEST(AdversaryPower, ScalesWithContention) {
  for (const int k : {16, 128}) {
    const double adaptive =
        mean_elected_under(sim::AdversaryClass::kAdaptive, k, 60);
    EXPECT_GT(adaptive, 0.7 * k) << "k=" << k;
  }
}

double mean_sift_elected_under(sim::AdversaryClass clazz, int k, double p,
                               int trials) {
  support::Accumulator elected;
  for (int trial = 0; trial < trials; ++trial) {
    SimHarness harness;
    auto ge = std::make_shared<SiftGroupElect<P>>(harness.arena(), p);
    auto count = std::make_shared<int>(0);
    for (int pid = 0; pid < k; ++pid) {
      harness.add(
          [ge, count](sim::Context& ctx) {
            if (ge->elect(ctx)) ++*count;
          },
          support::derive_seed(trial ^ 0xbeef, pid));
    }
    sim::GreedyKindAdversary adversary(clazz);
    EXPECT_TRUE(harness.run(adversary));
    elected.add(static_cast<double>(*count));
  }
  return elected.mean();
}

TEST(AdversaryPower, SiftingSurvivesOnlyWhenKindsAreHidden) {
  // The mirror image for the R/W-oblivious class: the readers-first strategy
  // elects everyone in a sifting step when it can see op kinds (adaptive),
  // but the R/W-oblivious view hides the random read-vs-write choice and the
  // p*k + 1/p sifting bound is restored.  Identical strategy code.
  constexpr int k = 64;
  constexpr double p = 0.25;
  const double adaptive =
      mean_sift_elected_under(sim::AdversaryClass::kAdaptive, k, p, 120);
  const double rw_oblivious =
      mean_sift_elected_under(sim::AdversaryClass::kRWOblivious, k, p, 120);
  EXPECT_GT(adaptive, 0.95 * k) << "readers-first elects everyone";
  EXPECT_LT(rw_oblivious, p * k + 1.0 / p + 3.0)
      << "hiding the kind restores the sift bound";
  EXPECT_GT(adaptive, 2.0 * rw_oblivious);
}

TEST(AdversaryPower, RWObliviousAlsoBlindToSlots) {
  // The R/W-oblivious class sees registers (so the greedy rule fires) but
  // Figure 1's randomness is in the *location*, which it does see -- making
  // it as strong as adaptive against Fig-1.  This is exactly why the paper
  // needs the sifting construction (randomized op *kind*) for that class.
  constexpr int k = 64;
  const double rw = mean_elected_under(sim::AdversaryClass::kRWOblivious, k, 60);
  EXPECT_GT(rw, 0.8 * k)
      << "Fig-1 gives no protection against register-seeing adversaries";
}

}  // namespace
}  // namespace rts::algo
