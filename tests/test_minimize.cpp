// Tests for the schedule minimizer (sim/minimize.hpp), the worst-case hunt
// (campaign/hunt.hpp), and the checked-in corpus under tests/corpus/:
//
//  * predicate-spec parsing and the prefix replay convention,
//  * the core ddmin properties -- the minimized schedule still satisfies
//    its predicate, is 1-minimal (removing any single action breaks it),
//    and minimization is idempotent (re-minimizing returns identical
//    bytes),
//  * corrupted / divergent / predicate-violating inputs are rejected
//    loudly, never "minimized" into something unrelated,
//  * a hunt end-to-end writes a conforming corpus directory, and the
//    checked-in tests/corpus/ conforms bit-for-bit with its manifest's
//    minimization claims intact.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "campaign/hunt.hpp"
#include "exec/conformance.hpp"
#include "sim/adversaries.hpp"
#include "sim/minimize.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"

namespace rts::sim {
namespace {

std::string corpus_dir() { return std::string(RTS_TEST_DATA_DIR) + "/corpus"; }

/// Records one (algorithm, adversary) stream the way the hunt does.
CellTrace record_cell(algo::AlgorithmId algorithm, algo::AdversaryId adversary,
                      int n, int k, int trials, std::uint64_t seed0) {
  const LeBuilder builder = algo::sim_builder(algorithm);
  const AdversaryFactory factory = algo::adversary_factory(adversary);
  CellTrace cell;
  cell.campaign = "test";
  cell.algorithm = algo::info(algorithm).name;
  cell.adversary = algo::info(adversary).name;
  cell.n = static_cast<std::uint32_t>(n);
  cell.k = static_cast<std::uint32_t>(k);
  cell.seed0 = seed0;
  cell.step_limit = Kernel::Options{}.step_limit;
  for (int t = 0; t < trials; ++t) {
    TrialTrace trial;
    record_trial_trace(builder, n, k, factory, t, seed0, Kernel::Options{},
                       &trial);
    cell.trials.push_back(std::move(trial));
  }
  return cell;
}

bool candidate_satisfies(const LeBuilder& builder, const CellTrace& cell,
                         const TrialTrace& trial,
                         const std::vector<Action>& actions,
                         const TracePredicate& predicate) {
  const std::optional<LeRunResult> result = replay_schedule_prefix(
      builder, static_cast<int>(cell.n), static_cast<int>(cell.k), actions,
      trial.trial_seed);
  if (!result) return false;
  CandidateRun run;
  run.cell = &cell;
  run.trial = &trial;
  run.actions = &actions;
  run.result = &*result;
  return predicate.holds(run);
}

TEST(PredicateSpec, ParsesFamiliesThresholdsAndRejectsMalformedSpecs) {
  auto spec = parse_predicate_spec("max-steps>=120");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->family, "max-steps");
  ASSERT_TRUE(spec->threshold.has_value());
  EXPECT_EQ(*spec->threshold, 120u);
  EXPECT_EQ(make_predicate(*spec).spec, "max-steps>=120");

  spec = parse_predicate_spec("winner-steps");
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(spec->threshold.has_value());
  EXPECT_THROW(make_predicate(*spec), Error);  // threshold family needs one

  spec = parse_predicate_spec("violation");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(make_predicate(*spec).spec, "violation");

  EXPECT_FALSE(parse_predicate_spec("violation>=3").has_value());
  EXPECT_FALSE(parse_predicate_spec("max-steps>=").has_value());
  EXPECT_FALSE(parse_predicate_spec("max-steps>=12x").has_value());
  EXPECT_FALSE(parse_predicate_spec("no-such-predicate").has_value());

  // Every catalogued family parses bare.
  for (const PredicateFamilyInfo& family : predicate_families()) {
    EXPECT_TRUE(parse_predicate_spec(family.name).has_value()) << family.name;
  }
  EXPECT_THROW(
      hunt_metric(PredicateSpec{"divergence", std::nullopt}, LeRunResult{}),
      Error);
}

TEST(ReplayPrefix, ReplaysRecordingsAndStarvesShortenedSchedules) {
  const CellTrace cell = record_cell(algo::AlgorithmId::kLogStarChain,
                                     algo::AdversaryId::kUniformRandom, 6, 6,
                                     1, /*seed0=*/17);
  const LeBuilder builder = algo::sim_builder(algo::AlgorithmId::kLogStarChain);
  const TrialTrace& trial = cell.trials[0];

  // The full recorded schedule replays to its recorded digest.
  const std::optional<LeRunResult> full =
      replay_schedule_prefix(builder, 6, 6, trial.actions, trial.trial_seed);
  ASSERT_TRUE(full.has_value());
  EXPECT_TRUE(replay_mismatch(trial, *full).empty())
      << replay_mismatch(trial, *full);

  // A strict prefix starves the rest instead of erroring.
  std::vector<Action> half(trial.actions.begin(),
                           trial.actions.begin() +
                               static_cast<std::ptrdiff_t>(
                                   trial.actions.size() / 2));
  const std::optional<LeRunResult> prefix =
      replay_schedule_prefix(builder, 6, 6, half, trial.trial_seed);
  ASSERT_TRUE(prefix.has_value());
  EXPECT_FALSE(prefix->completed);
  EXPECT_GT(prefix->unfinished, 0);
  EXPECT_EQ(prefix->total_steps, schedule_step_budget(half));

  // A grant-free schedule is degenerate, and a grant to a crashed pid is
  // not a well-formed schedule.
  EXPECT_FALSE(replay_schedule_prefix(builder, 6, 6, {}, trial.trial_seed)
                   .has_value());
  std::vector<Action> crashed = {Action::crash(0), Action::step(0)};
  EXPECT_FALSE(
      replay_schedule_prefix(builder, 6, 6, crashed, trial.trial_seed)
          .has_value());
}

TEST(Minimize, ResultSatisfiesPredicateIsOneMinimalAndConforms) {
  const CellTrace cell = record_cell(algo::AlgorithmId::kRatRacePath,
                                     algo::AdversaryId::kUniformRandom, 8, 8,
                                     3, /*seed0=*/23);
  const LeBuilder builder =
      algo::sim_builder(algo::AlgorithmId::kRatRacePath);
  const TracePredicate predicate =
      pred_max_steps_at_least(cell.trials[1].max_steps);

  const MinimizeResult minimized = minimize_trial(builder, cell, 1, predicate);
  const TrialTrace& trial = minimized.cell.trials.at(0);
  EXPECT_EQ(minimized.stats.original_actions, cell.trials[1].actions.size());
  EXPECT_EQ(minimized.stats.minimized_actions, trial.actions.size());
  EXPECT_LE(trial.actions.size(), cell.trials[1].actions.size());
  EXPECT_EQ(minimized.cell.step_limit, schedule_step_budget(trial.actions));
  EXPECT_EQ(minimized.cell.algorithm, cell.algorithm);
  EXPECT_EQ(trial.trial_seed, cell.trials[1].trial_seed);

  // The predicate still holds on the minimized schedule.
  EXPECT_TRUE(candidate_satisfies(builder, minimized.cell, trial,
                                  trial.actions, predicate));

  // 1-minimality: dropping any single remaining action breaks the
  // predicate (or the schedule itself).
  for (std::size_t drop = 0; drop < trial.actions.size(); ++drop) {
    std::vector<Action> candidate = trial.actions;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(drop));
    EXPECT_FALSE(candidate_satisfies(builder, minimized.cell, trial,
                                     candidate, predicate))
        << "action " << drop << " was removable";
  }

  // The emitted cell is an ordinary trace: all three conformance paths
  // replay it bit for bit.
  const exec::ConformanceReport report = exec::check_cell(minimized.cell);
  EXPECT_TRUE(report.ok())
      << (report.mismatches.empty() ? "" : report.mismatches.front());
  EXPECT_EQ(report.hw_runs, 1);
}

TEST(Minimize, IsIdempotent) {
  const CellTrace cell = record_cell(algo::AlgorithmId::kCombinedSift,
                                     algo::AdversaryId::kUniformRandom, 6, 6,
                                     1, /*seed0=*/31);
  const LeBuilder builder =
      algo::sim_builder(algo::AlgorithmId::kCombinedSift);
  const TracePredicate predicate =
      pred_max_steps_at_least(cell.trials[0].max_steps);

  const MinimizeResult once = minimize_trial(builder, cell, 0, predicate);
  const MinimizeResult twice =
      minimize_trial(builder, once.cell, 0, predicate);
  EXPECT_EQ(twice.stats.original_actions, twice.stats.minimized_actions);
  EXPECT_EQ(encode_cell_trace(once.cell), encode_cell_trace(twice.cell));
}

TEST(Minimize, StrictlyRemovesWorkIrrelevantToTheWinner) {
  // Under the sequential scheduler pid 0 elects itself solo and every later
  // grant belongs to losers; against winner-steps the minimal schedule is
  // exactly the winner's own grants -- a deterministic strict reduction.
  const CellTrace cell = record_cell(algo::AlgorithmId::kLogStarChain,
                                     algo::AdversaryId::kSequential, 5, 5, 1,
                                     /*seed0=*/7);
  const LeBuilder builder = algo::sim_builder(algo::AlgorithmId::kLogStarChain);
  const std::optional<LeRunResult> recorded = replay_schedule_prefix(
      builder, 5, 5, cell.trials[0].actions, cell.trials[0].trial_seed);
  ASSERT_TRUE(recorded.has_value());
  ASSERT_EQ(winner_of(*recorded), 0);
  const std::uint64_t winner_steps = recorded->steps[0];
  ASSERT_LT(winner_steps, cell.trials[0].actions.size());

  const MinimizeResult minimized = minimize_trial(
      builder, cell, 0, pred_winner_steps_at_least(winner_steps));
  EXPECT_LT(minimized.stats.minimized_actions,
            minimized.stats.original_actions);
  EXPECT_EQ(minimized.stats.minimized_actions, winner_steps);
  for (const Action& action : minimized.cell.trials[0].actions) {
    EXPECT_EQ(action.pid, 0);
    EXPECT_EQ(action.kind, Action::Kind::kStep);
  }
}

TEST(Minimize, RejectsCorruptedDivergentAndUnsatisfiedInputs) {
  const CellTrace cell = record_cell(algo::AlgorithmId::kLogStarChain,
                                     algo::AdversaryId::kUniformRandom, 5, 5,
                                     1, /*seed0=*/3);
  const LeBuilder builder = algo::sim_builder(algo::AlgorithmId::kLogStarChain);
  const TracePredicate predicate =
      pred_max_steps_at_least(cell.trials[0].max_steps);

  // A falsified digest: the trace no longer reproduces what it recorded.
  {
    CellTrace tampered = cell;
    tampered.trials[0].total_steps += 1;
    EXPECT_THROW(minimize_trial(builder, tampered, 0, predicate), Error);
  }
  // A truncated schedule: the standard replay diverges (exhausts).
  {
    CellTrace tampered = cell;
    tampered.trials[0].actions.resize(tampered.trials[0].actions.size() / 2);
    EXPECT_THROW(minimize_trial(builder, tampered, 0, predicate), Error);
  }
  // A predicate the input does not satisfy.
  EXPECT_THROW(minimize_trial(builder, cell, 0,
                              pred_max_steps_at_least(
                                  cell.trials[0].max_steps + 1000)),
               Error);
  // An out-of-range trial index.
  EXPECT_THROW(minimize_trial(builder, cell, 7, predicate), Error);
}

TEST(Hunt, EndToEndWritesAConformingCorpusDirectory) {
  const std::string dir = ::testing::TempDir() + "rts-hunt-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);

  campaign::CampaignSpec spec;
  spec.name = "hunt-test";
  spec.algorithms = {algo::AlgorithmId::kLogStarChain,
                     algo::AlgorithmId::kRatRacePath};
  spec.adversaries = {algo::AdversaryId::kGeNeutralizer};
  spec.ks = {6};
  spec.trials = 4;
  spec.seed = 99;

  campaign::HuntOptions options;
  options.predicates = {*parse_predicate_spec("max-steps"),
                        *parse_predicate_spec("winner-steps")};
  const std::vector<campaign::HuntedCell> hunted =
      campaign::run_hunt(spec, dir, options);
  ASSERT_EQ(hunted.size(), 4u);  // 2 algorithms x 2 predicates
  for (const campaign::HuntedCell& entry : hunted) {
    EXPECT_FALSE(entry.file.empty()) << entry.note;
    EXPECT_TRUE(std::filesystem::exists(entry.file)) << entry.file;
    EXPECT_LE(entry.stats.minimized_actions, entry.stats.original_actions);
  }
  campaign::write_corpus_manifest(dir + "/MANIFEST.json", hunted);

  // The directory passes the same gate CI runs over tests/corpus/.
  EXPECT_EQ(campaign::conform_directory(dir, stdout), 0);

  // The divergence family is refused as a hunt axis.
  options.predicates = {*parse_predicate_spec("divergence")};
  EXPECT_THROW(campaign::run_hunt(spec, dir, options), Error);

  std::filesystem::remove_all(dir);
}

TEST(Corpus, CheckedInCorpusConformsWithManifestClaims) {
  // The acceptance gate: every checked-in worst-case trace replays
  // bit-for-bit through fresh sim, pooled sim, and the scheduled hw drive,
  // and the manifest's strict-minimization claims hold.
  EXPECT_EQ(campaign::conform_directory(corpus_dir(), stdout), 0);

  // Breadth: the corpus spans enough of the worst-case landscape to be a
  // regression net (>= 6 traces, >= 2 algorithms, >= 2 predicates).
  std::ifstream manifest(corpus_dir() + "/MANIFEST.json");
  ASSERT_TRUE(manifest.is_open());
  std::set<std::string> algorithms;
  std::set<std::string> families;
  int entries = 0;
  std::string line;
  const auto scan = [&line](const std::string& key) -> std::string {
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) return {};
    const std::size_t begin = at + needle.size();
    return line.substr(begin, line.find('"', begin) - begin);
  };
  while (std::getline(manifest, line)) {
    const std::string file = scan("file");
    if (file.empty()) continue;
    ++entries;
    algorithms.insert(scan("algorithm"));
    const std::string predicate = scan("predicate");
    families.insert(predicate.substr(0, predicate.find(">=")));
    EXPECT_TRUE(std::filesystem::exists(corpus_dir() + "/" + file)) << file;
  }
  EXPECT_GE(entries, 6);
  EXPECT_GE(algorithms.size(), 2u);
  EXPECT_GE(families.size(), 2u);
}

}  // namespace
}  // namespace rts::sim
