// Tests for the renaming component: uniqueness, adaptivity of the name
// range (max name < k regardless of capacity), crash tolerance (crashed
// processes may strand names but never cause duplicates), and behaviour on
// both platforms.
#include <gtest/gtest.h>

#include <algorithm>
#include <barrier>
#include <memory>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "algo/renaming.hpp"
#include "algo/sim_platform.hpp"
#include "hw/platform.hpp"
#include "sim_harness.hpp"

namespace rts::algo {
namespace {

using rts::testing::SchedKind;
using rts::testing::SimHarness;
using P = SimPlatform;

std::vector<int> run_renaming(int capacity, int k, SchedKind sched,
                              std::uint64_t seed, bool* completed = nullptr) {
  SimHarness harness;
  auto renaming = std::make_shared<Renaming<P>>(harness.arena(), capacity);
  std::vector<int> names(static_cast<std::size_t>(k), -2);
  for (int pid = 0; pid < k; ++pid) {
    harness.add(
        [renaming, &names, pid](sim::Context& ctx) {
          names[static_cast<std::size_t>(pid)] = renaming->acquire(ctx);
        },
        support::derive_seed(seed, static_cast<std::uint64_t>(pid)));
  }
  auto adversary = rts::testing::make_adversary(sched, seed);
  const bool ok = harness.run(*adversary);
  if (completed != nullptr) *completed = ok;
  EXPECT_TRUE(ok);
  return names;
}

class RenamingSweep
    : public ::testing::TestWithParam<std::tuple<int, SchedKind>> {};

TEST_P(RenamingSweep, NamesAreUniqueAndAdaptive) {
  const auto [k, sched] = GetParam();
  const int capacity = 2 * k;  // more slots than participants
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto names = run_renaming(capacity, k, sched, seed);
    std::set<int> seen;
    for (const int name : names) {
      EXPECT_GE(name, 0);
      EXPECT_LT(name, capacity);
      EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    }
    // Adaptivity: k participants never walk past the first k slots.
    EXPECT_LT(*std::max_element(names.begin(), names.end()), k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RenamingSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 12, 24),
                       ::testing::Values(SchedKind::kSequential,
                                         SchedKind::kRoundRobin,
                                         SchedKind::kRandom)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_" +
             rts::testing::to_string(std::get<1>(info.param));
    });

TEST(Renaming, ExactCapacityStillUnique) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto names = run_renaming(8, 8, SchedKind::kRandom, seed);
    std::set<int> seen(names.begin(), names.end());
    EXPECT_EQ(seen.size(), 8u);
    EXPECT_EQ(*seen.rbegin(), 7);  // all 8 slots used
  }
}

TEST(Renaming, CrashesNeverCauseDuplicates) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    SimHarness harness;
    auto renaming = std::make_shared<Renaming<P>>(harness.arena(), 16);
    std::vector<int> names(12, -2);
    for (int pid = 0; pid < 12; ++pid) {
      harness.add(
          [renaming, &names, pid](sim::Context& ctx) {
            names[static_cast<std::size_t>(pid)] = renaming->acquire(ctx);
          },
          support::derive_seed(seed, static_cast<std::uint64_t>(pid)));
    }
    sim::RoundRobinAdversary inner;
    sim::CrashInjectingAdversary adversary(inner, seed, 0.02, 4);
    ASSERT_TRUE(harness.run(adversary));
    std::set<int> seen;
    for (const int name : names) {
      if (name < 0) continue;  // crashed before acquiring
      EXPECT_TRUE(seen.insert(name).second) << "duplicate under crashes";
    }
  }
}

TEST(Renaming, HardwareThreads) {
  constexpr int kThreads = 8;
  hw::RegisterPool pool;
  hw::HwPlatform::Arena arena(pool);
  Renaming<hw::HwPlatform> renaming(arena, kThreads);
  std::vector<int> names(kThreads, -2);
  std::barrier gate(kThreads);
  {
    std::vector<std::jthread> threads;
    for (int pid = 0; pid < kThreads; ++pid) {
      threads.emplace_back([&, pid] {
        support::PrngSource rng(support::derive_seed(99, pid));
        hw::HwPlatform::Context ctx(pid, rng);
        gate.arrive_and_wait();
        names[static_cast<std::size_t>(pid)] = renaming.acquire(ctx);
      });
    }
  }
  std::set<int> seen(names.begin(), names.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads));
  for (const int name : names) {
    EXPECT_GE(name, 0);
    EXPECT_LT(name, kThreads);
  }
}

TEST(Renaming, RejectsBadCapacity) {
  SimHarness harness;
  EXPECT_THROW(Renaming<P> bad(harness.arena(), 0), Error);
}

}  // namespace
}  // namespace rts::algo
