// Tests for the simulator substrate: memory accounting, process lifecycle,
// pending-op announcement, adversary view filtering per adversary class,
// crash semantics, determinism, and the high-level runner.
#include <gtest/gtest.h>

#include <memory>

#include "sim/adversaries.hpp"
#include "sim/adversary.hpp"
#include "sim/kernel.hpp"
#include "sim/memory.hpp"
#include "sim/runner.hpp"
#include "support/rng.hpp"

namespace rts::sim {
namespace {

std::unique_ptr<support::RandomSource> prng(std::uint64_t seed) {
  return std::make_unique<support::PrngSource>(seed);
}

TEST(Memory, AllocReadWriteAccounting) {
  SimMemory mem;
  const RegId a = mem.alloc("a");
  const RegId b = mem.alloc("b");
  EXPECT_EQ(mem.allocated(), 2u);
  EXPECT_EQ(mem.touched(), 0u);

  mem.write(a, 7, /*pid=*/3);
  EXPECT_EQ(mem.read(a, /*pid=*/1), 7u);
  EXPECT_EQ(mem.slot(a).last_writer, 3);
  EXPECT_EQ(mem.slot(a).reads, 1u);
  EXPECT_EQ(mem.slot(a).writes, 1u);
  EXPECT_EQ(mem.slot(b).last_writer, -1);
  EXPECT_EQ(mem.touched(), 1u);
  EXPECT_EQ(mem.total_reads(), 1u);
  EXPECT_EQ(mem.total_writes(), 1u);
}

TEST(Kernel, ProcessAnnouncesAndStepsCount) {
  Kernel kernel;
  const RegId reg = kernel.memory().alloc("r");
  std::uint64_t seen = 999;
  kernel.add_process(
      [&](Context& ctx) {
        ctx.write(reg, 5);
        seen = ctx.read(reg);
      },
      prng(1));
  kernel.start();

  ASSERT_TRUE(kernel.runnable(0));
  EXPECT_EQ(kernel.pending(0).kind, OpKind::kWrite);
  EXPECT_EQ(kernel.pending(0).reg, reg);
  EXPECT_EQ(kernel.pending(0).value, 5u);

  kernel.grant(0);  // the write executes; the read is announced
  EXPECT_EQ(kernel.memory().slot(reg).value, 5u);
  EXPECT_EQ(kernel.pending(0).kind, OpKind::kRead);
  EXPECT_EQ(seen, 999u) << "read not yet executed";

  kernel.grant(0);
  EXPECT_EQ(seen, 5u);
  EXPECT_EQ(kernel.state(0), SimProcess::State::kFinished);
  EXPECT_EQ(kernel.steps(0), 2u);
  EXPECT_TRUE(kernel.all_done());
}

TEST(Kernel, InterleavingIsAdversaryControlled) {
  Kernel kernel;
  const RegId reg = kernel.memory().alloc("r");
  std::uint64_t read_by_1 = 0;
  kernel.add_process([&](Context& ctx) { ctx.write(reg, 10); }, prng(1));
  kernel.add_process([&](Context& ctx) { read_by_1 = ctx.read(reg); },
                     prng(2));
  kernel.start();

  // Schedule the reader first: it must see 0.
  kernel.grant(1);
  EXPECT_EQ(read_by_1, 0u);
  kernel.grant(0);
  EXPECT_TRUE(kernel.all_done());
}

TEST(Kernel, CrashedProcessNeverRuns) {
  Kernel kernel;
  const RegId reg = kernel.memory().alloc("r");
  kernel.add_process([&](Context& ctx) { ctx.write(reg, 1); }, prng(1));
  kernel.add_process([&](Context& ctx) { ctx.write(reg, 2); }, prng(2));
  kernel.start();

  kernel.crash(0);
  EXPECT_EQ(kernel.state(0), SimProcess::State::kCrashed);
  EXPECT_FALSE(kernel.runnable(0));
  kernel.grant(1);
  EXPECT_TRUE(kernel.all_done());
  EXPECT_EQ(kernel.memory().slot(reg).value, 2u);
  EXPECT_EQ(kernel.steps(0), 0u);
}

TEST(Kernel, StepLimitAborts) {
  Kernel::Options options;
  options.step_limit = 10;
  Kernel kernel(options);
  const RegId reg = kernel.memory().alloc("r");
  kernel.add_process(
      [&](Context& ctx) {
        for (;;) ctx.read(reg);  // diverges on purpose
      },
      prng(1));
  RoundRobinAdversary rr;
  EXPECT_FALSE(kernel.run(rr));
  EXPECT_EQ(kernel.total_steps(), 10u);
}

TEST(Kernel, EventLogAndObserver) {
  Kernel::Options options;
  options.track_events = true;
  Kernel kernel(options);
  const RegId reg = kernel.memory().alloc("r");
  int observed = 0;
  kernel.set_op_observer([&](const OpRecord& rec) {
    ++observed;
    EXPECT_EQ(rec.reg, reg);
  });
  kernel.add_process(
      [&](Context& ctx) {
        ctx.write(reg, 3);
        ctx.read(reg);
      },
      prng(1));
  RoundRobinAdversary rr;
  ASSERT_TRUE(kernel.run(rr));
  EXPECT_EQ(observed, 2);
  ASSERT_EQ(kernel.event_log().size(), 2u);
  EXPECT_EQ(kernel.event_log()[0].kind, OpKind::kWrite);
  EXPECT_EQ(kernel.event_log()[1].kind, OpKind::kRead);
  EXPECT_EQ(kernel.event_log()[1].prev_writer, 0);
}

// --- Adversary view filtering -------------------------------------------

class ViewProbe {
 public:
  Kernel kernel;
  RegId reg;

  explicit ViewProbe(OpTags tags) {
    reg = kernel.memory().alloc("r");
    kernel.add_process(
        [this, tags](Context& ctx) { ctx.write(reg, 42, tags); },
        std::make_unique<support::PrngSource>(1));
    kernel.start();
  }
};

TEST(AdversaryView, ObliviousSeesNothing) {
  ViewProbe probe(OpTags{});
  KernelView view(probe.kernel, AdversaryClass::kOblivious);
  const PendingOpView p = view.pending(0);
  EXPECT_FALSE(p.kind.has_value());
  EXPECT_FALSE(p.reg.has_value());
  EXPECT_FALSE(p.value.has_value());
}

TEST(AdversaryView, AdaptiveSeesEverything) {
  OpTags tags;
  tags.random_location = true;
  tags.random_kind = true;
  ViewProbe probe(tags);
  KernelView view(probe.kernel, AdversaryClass::kAdaptive);
  const PendingOpView p = view.pending(0);
  ASSERT_TRUE(p.kind.has_value());
  EXPECT_EQ(*p.kind, OpKind::kWrite);
  ASSERT_TRUE(p.reg.has_value());
  EXPECT_EQ(*p.reg, probe.reg);
  ASSERT_TRUE(p.value.has_value());
  EXPECT_EQ(*p.value, 42u);
}

TEST(AdversaryView, LocationObliviousHidesRandomLocation) {
  OpTags tags;
  tags.random_location = true;
  ViewProbe probe(tags);
  KernelView view(probe.kernel, AdversaryClass::kLocationOblivious);
  const PendingOpView p = view.pending(0);
  ASSERT_TRUE(p.kind.has_value()) << "kind/argument stay visible";
  EXPECT_EQ(*p.kind, OpKind::kWrite);
  EXPECT_EQ(*p.value, 42u);
  EXPECT_FALSE(p.reg.has_value()) << "randomly chosen register is hidden";
}

TEST(AdversaryView, LocationObliviousSeesDeterministicLocation) {
  ViewProbe probe(OpTags{});
  KernelView view(probe.kernel, AdversaryClass::kLocationOblivious);
  EXPECT_TRUE(view.pending(0).reg.has_value());
}

TEST(AdversaryView, RWObliviousHidesRandomKind) {
  OpTags tags;
  tags.random_kind = true;
  ViewProbe probe(tags);
  KernelView view(probe.kernel, AdversaryClass::kRWOblivious);
  const PendingOpView p = view.pending(0);
  EXPECT_TRUE(p.reg.has_value()) << "location stays visible";
  EXPECT_FALSE(p.kind.has_value()) << "read-vs-write is hidden";
  EXPECT_FALSE(p.value.has_value()) << "the value would reveal a write";
}

// --- Concrete adversaries -------------------------------------------------

TEST(Adversaries, FixedScheduleSkipsFinished) {
  Kernel kernel;
  const RegId reg = kernel.memory().alloc("r");
  for (int p = 0; p < 2; ++p) {
    kernel.add_process([&, p](Context& ctx) { ctx.write(reg, 1 + p); },
                       prng(p));
  }
  // Process 0 appears twice but finishes after one op; the extra entry is
  // skipped per the oblivious-schedule convention.
  FixedScheduleAdversary adversary({0, 0, 1});
  ASSERT_TRUE(kernel.run(adversary));
  EXPECT_EQ(kernel.memory().slot(reg).value, 2u);
}

TEST(Adversaries, CrashInjectionRespectsBudget) {
  Kernel kernel;
  const RegId reg = kernel.memory().alloc("r");
  for (int p = 0; p < 4; ++p) {
    kernel.add_process(
        [&](Context& ctx) {
          for (int i = 0; i < 5; ++i) ctx.read(reg);
        },
        prng(p));
  }
  RoundRobinAdversary inner;
  CrashInjectingAdversary adversary(inner, /*seed=*/7, /*crash_prob=*/1.0,
                                    /*max_crashes=*/2);
  ASSERT_TRUE(kernel.run(adversary));
  EXPECT_EQ(adversary.crashes_injected(), 2);
  int crashed = 0;
  for (int p = 0; p < 4; ++p) {
    if (kernel.state(p) == SimProcess::State::kCrashed) ++crashed;
  }
  EXPECT_EQ(crashed, 2);
}

// --- Runner ---------------------------------------------------------------

sim::LeBuilder trivial_le_builder() {
  // A (deliberately unsafe under asynchrony-free reasoning but fine for the
  // runner plumbing test) "first writer wins" object.
  return [](Kernel& kernel, int) -> BuiltLe {
    const RegId flag = kernel.memory().alloc("flag");
    BuiltLe built;
    built.declared_registers = 1;
    built.elect = [flag](Context& ctx) {
      if (ctx.read(flag) != 0) return Outcome::kLose;
      ctx.write(flag, 1);
      return Outcome::kWin;
    };
    return built;
  };
}

TEST(Runner, SequentialAdversaryYieldsOneWinner) {
  SequentialAdversary adversary;
  const LeRunResult r =
      run_le_once(trivial_le_builder(), /*n=*/4, /*k=*/4, adversary, 1);
  EXPECT_EQ(r.winners, 1);
  EXPECT_EQ(r.losers, 3);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_TRUE(r.crash_free);
  EXPECT_EQ(r.regs_allocated, 1u);
}

TEST(Runner, DetectsMultiWinnerViolation) {
  // Under round-robin the naive object elects everyone: all read 0 first.
  RoundRobinAdversary adversary;
  const LeRunResult r =
      run_le_once(trivial_le_builder(), /*n=*/3, /*k=*/3, adversary, 1);
  EXPECT_EQ(r.winners, 3);
  ASSERT_FALSE(r.violations.empty());
}

TEST(Runner, DeterministicGivenSeedAndAdversary) {
  auto run = [](std::uint64_t seed) {
    UniformRandomAdversary adversary(seed);
    return run_le_once(trivial_le_builder(), 8, 8, adversary, seed);
  };
  const LeRunResult a = run(5);
  const LeRunResult b = run(5);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_steps, b.total_steps);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i], b.outcomes[i]);
  }
}

TEST(Runner, AggregateCollectsTrials) {
  const LeAggregate agg = run_le_many(
      trivial_le_builder(), 4, 4,
      [](std::uint64_t seed) {
        return std::make_unique<UniformRandomAdversary>(seed);
      },
      /*trials=*/20, /*seed0=*/3);
  EXPECT_EQ(agg.runs, 20);
  EXPECT_EQ(agg.max_steps.count(), 20u);
  EXPECT_GT(agg.max_steps.mean(), 0.0);
}

}  // namespace
}  // namespace rts::sim
