// Tests for the schedule record/replay substrate (sim/trace.hpp): binary
// round-tripping of the .rtst cell-trace format, corruption detection, and
// the core replay property -- every catalogue algorithm x adversary cell,
// recorded and then re-driven from the (serialized) trace, reproduces the
// recorded trials bit for bit, through both the fresh-kernel and the pooled
// workspace paths, crashed and step-limit-starved trials included.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "exec/workspace.hpp"
#include "sim/adversaries.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"
#include "support/math.hpp"

namespace rts::sim {
namespace {

void expect_same_result(const LeRunResult& recorded, const LeRunResult& replayed,
                        const std::string& label) {
  ASSERT_EQ(recorded.k, replayed.k) << label;
  for (int pid = 0; pid < recorded.k; ++pid) {
    const auto i = static_cast<std::size_t>(pid);
    EXPECT_EQ(recorded.outcomes[i], replayed.outcomes[i])
        << label << " pid " << pid;
    EXPECT_EQ(recorded.steps[i], replayed.steps[i]) << label << " pid " << pid;
  }
  EXPECT_EQ(recorded.max_steps, replayed.max_steps) << label;
  EXPECT_EQ(recorded.total_steps, replayed.total_steps) << label;
  EXPECT_EQ(recorded.winners, replayed.winners) << label;
  EXPECT_EQ(recorded.losers, replayed.losers) << label;
  EXPECT_EQ(recorded.unfinished, replayed.unfinished) << label;
  EXPECT_EQ(recorded.regs_touched, replayed.regs_touched) << label;
  EXPECT_EQ(recorded.declared_registers, replayed.declared_registers) << label;
  EXPECT_EQ(recorded.crash_free, replayed.crash_free) << label;
  EXPECT_EQ(recorded.completed, replayed.completed) << label;
  EXPECT_EQ(recorded.violations, replayed.violations) << label;
}

void expect_same_aggregate(const exec::Aggregate& a, const exec::Aggregate& b,
                           const std::string& label) {
  EXPECT_EQ(a.runs, b.runs) << label;
  EXPECT_EQ(a.violation_runs, b.violation_runs) << label;
  EXPECT_EQ(a.crashed_runs, b.crashed_runs) << label;
  // Bitwise double equality: same values folded in the same order.
  EXPECT_EQ(a.max_steps.mean(), b.max_steps.mean()) << label;
  EXPECT_EQ(a.mean_steps.mean(), b.mean_steps.mean()) << label;
  EXPECT_EQ(a.total_steps.mean(), b.total_steps.mean()) << label;
  EXPECT_EQ(a.regs_touched.mean(), b.regs_touched.mean()) << label;
  EXPECT_EQ(a.unfinished.mean(), b.unfinished.mean()) << label;
}

CellTrace sample_cell() {
  CellTrace cell;
  cell.campaign = "unit";
  cell.algorithm = "combined-sift";
  cell.adversary = "crash";
  cell.cell_index = 7;
  cell.n = 6;
  cell.k = 5;
  cell.seed0 = 0xdeadbeefcafeULL;
  cell.step_limit = 1'000'000;
  for (int t = 0; t < 3; ++t) {
    TrialTrace trial;
    trial.trial_seed = 100 + static_cast<std::uint64_t>(t);
    trial.adversary_seed = 200 + static_cast<std::uint64_t>(t);
    trial.actions = {Action::step(0), Action::step(4), Action::crash(2),
                     Action::step(1), Action::step(1)};
    trial.total_steps = 4;
    trial.max_steps = 2;
    trial.regs_touched = 9;
    trial.winner = t == 2 ? -1 : 1;
    trial.completed = t != 1;
    trial.crash_free = false;
    trial.outcome_digest = 0x1234'5678u + static_cast<std::uint64_t>(t);
    cell.trials.push_back(trial);
  }
  return cell;
}

TEST(TraceFormat, EncodeDecodeRoundTripsEveryField) {
  const CellTrace cell = sample_cell();
  const std::string bytes = encode_cell_trace(cell);
  CellTrace out;
  std::string error;
  ASSERT_TRUE(decode_cell_trace(bytes, &out, &error)) << error;
  EXPECT_EQ(out.campaign, cell.campaign);
  EXPECT_EQ(out.algorithm, cell.algorithm);
  EXPECT_EQ(out.adversary, cell.adversary);
  EXPECT_EQ(out.cell_index, cell.cell_index);
  EXPECT_EQ(out.n, cell.n);
  EXPECT_EQ(out.k, cell.k);
  EXPECT_EQ(out.seed0, cell.seed0);
  EXPECT_EQ(out.step_limit, cell.step_limit);
  ASSERT_EQ(out.trials.size(), cell.trials.size());
  for (std::size_t t = 0; t < cell.trials.size(); ++t) {
    const TrialTrace& want = cell.trials[t];
    const TrialTrace& got = out.trials[t];
    EXPECT_EQ(got.trial_seed, want.trial_seed);
    EXPECT_EQ(got.adversary_seed, want.adversary_seed);
    ASSERT_EQ(got.actions.size(), want.actions.size());
    for (std::size_t a = 0; a < want.actions.size(); ++a) {
      EXPECT_EQ(got.actions[a].kind, want.actions[a].kind);
      EXPECT_EQ(got.actions[a].pid, want.actions[a].pid);
    }
    EXPECT_EQ(got.total_steps, want.total_steps);
    EXPECT_EQ(got.max_steps, want.max_steps);
    EXPECT_EQ(got.regs_touched, want.regs_touched);
    EXPECT_EQ(got.winner, want.winner);
    EXPECT_EQ(got.completed, want.completed);
    EXPECT_EQ(got.crash_free, want.crash_free);
    EXPECT_EQ(got.outcome_digest, want.outcome_digest);
  }
}

TEST(TraceFormat, RejectsCorruptTruncatedAndForeignBytes) {
  const std::string bytes = encode_cell_trace(sample_cell());
  CellTrace out;
  std::string error;

  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] = static_cast<char>(corrupt[bytes.size() / 2] ^ 0x40);
  EXPECT_FALSE(decode_cell_trace(corrupt, &out, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;

  EXPECT_FALSE(
      decode_cell_trace(std::string_view(bytes).substr(0, 10), &out, &error));
  EXPECT_FALSE(decode_cell_trace("not a trace file at all", &out, &error));

  // A version bump must be refused, not misparsed.  Patch the varint
  // version byte right after the magic and re-seal the checksum, so the
  // failure exercised is the version gate and not corruption detection.
  std::string wrong_version = bytes.substr(0, bytes.size() - 8);
  wrong_version[8] = 0x7e;
  std::uint64_t checksum = support::kFnv1aOffset;
  support::fnv1a_bytes(checksum, wrong_version);
  for (int byte = 0; byte < 8; ++byte) {
    wrong_version.push_back(static_cast<char>((checksum >> (8 * byte)) & 0xffu));
  }
  EXPECT_FALSE(decode_cell_trace(wrong_version, &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(TraceFormat, FileRoundTripAndFilenames) {
  const CellTrace cell = sample_cell();
  const std::string path =
      ::testing::TempDir() + "rts_trace_roundtrip_" + cell_trace_filename(7);
  EXPECT_EQ(cell_trace_filename(7), "cell-0007.rtst");
  std::string error;
  ASSERT_TRUE(write_cell_trace_file(path, cell, &error)) << error;
  CellTrace out;
  ASSERT_TRUE(read_cell_trace_file(path, &out, &error)) << error;
  EXPECT_EQ(out.seed0, cell.seed0);
  ASSERT_EQ(out.trials.size(), 3u);
  EXPECT_EQ(out.trials[2].winner, -1);
  std::remove(path.c_str());
  EXPECT_FALSE(read_cell_trace_file(path, &out, &error));
}

/// Records `trials` trials of one (algorithm, adversary) stream through the
/// fresh path, keeping the per-trial results for comparison.
CellTrace record_stream(const sim::LeBuilder& builder,
                        const sim::AdversaryFactory& factory, int n, int k,
                        int trials, std::uint64_t seed0,
                        Kernel::Options kernel_options,
                        std::vector<LeRunResult>* results) {
  CellTrace cell;
  cell.n = static_cast<std::uint32_t>(n);
  cell.k = static_cast<std::uint32_t>(k);
  cell.seed0 = seed0;
  cell.step_limit = kernel_options.step_limit;
  for (int t = 0; t < trials; ++t) {
    TrialTrace trial;
    trial.trial_seed = trial_seed(seed0, t);
    trial.adversary_seed = adversary_seed(trial.trial_seed);
    const auto inner = factory(trial.adversary_seed);
    RecordingAdversary recorder(*inner, &trial.actions);
    const LeRunResult result = run_le_once(builder, n, k, recorder,
                                           trial.trial_seed, kernel_options);
    fill_trace_result(trial, result);
    results->push_back(result);
    cell.trials.push_back(std::move(trial));
  }
  return cell;
}

TEST(TraceReplay, EveryCatalogueCellReplaysBitForBit) {
  // The tentpole property: record -> serialize -> parse -> replay must
  // reproduce identical LeRunResults and aggregate bytes for every sim
  // algorithm under every seedable catalogue adversary, including the
  // crashing one.  Fresh and pooled replay paths are both checked.
  constexpr int kParticipants = 6;
  constexpr int kTrials = 4;
  for (const algo::AlgoInfo& algorithm : algo::all_algorithms()) {
    if (!algo::supports(algorithm.id, exec::Backend::kSim)) continue;
    const sim::LeBuilder builder = algo::sim_builder(algorithm.id);
    for (const algo::AdversaryInfo& adversary : algo::all_adversaries()) {
      if (adversary.from_trace) continue;
      const std::string label =
          std::string(algorithm.name) + " / " + adversary.name;
      std::vector<LeRunResult> recorded;
      const CellTrace cell = record_stream(
          builder, algo::adversary_factory(adversary.id), kParticipants,
          kParticipants, kTrials, /*seed0=*/77, Kernel::Options{}, &recorded);

      // Serialization round trip in the middle, so the property covers the
      // bytes that would live on disk, not just the in-memory structs.
      CellTrace parsed;
      std::string error;
      ASSERT_TRUE(decode_cell_trace(encode_cell_trace(cell), &parsed, &error))
          << label << ": " << error;

      exec::Aggregate recorded_agg;
      exec::Aggregate fresh_agg;
      exec::Aggregate pooled_agg;
      exec::TrialWorkspace workspace;
      for (int t = 0; t < kTrials; ++t) {
        const TrialTrace& trial = parsed.trials[static_cast<std::size_t>(t)];
        ReplayAdversary fresh_replay(&trial.actions);
        const LeRunResult fresh =
            run_le_once(builder, kParticipants, kParticipants, fresh_replay,
                        trial.trial_seed);
        ReplayAdversary pooled_replay(&trial.actions);
        const LeRunResult pooled = workspace.run_le_once(
            /*key=*/0, builder, kParticipants, kParticipants, pooled_replay,
            trial.trial_seed);
        const std::string tag = label + " trial " + std::to_string(t);
        expect_same_result(recorded[static_cast<std::size_t>(t)], fresh,
                           tag + " (fresh)");
        expect_same_result(recorded[static_cast<std::size_t>(t)], pooled,
                           tag + " (pooled)");
        EXPECT_TRUE(replay_mismatch(trial, fresh).empty())
            << tag << ": " << replay_mismatch(trial, fresh);
        EXPECT_TRUE(fresh_replay.exhausted()) << tag;
        accumulate_trial(recorded_agg,
                         summarize_trial(recorded[static_cast<std::size_t>(t)]));
        accumulate_trial(fresh_agg, summarize_trial(fresh));
        accumulate_trial(pooled_agg, summarize_trial(pooled));
      }
      expect_same_aggregate(recorded_agg, fresh_agg, label + " fresh agg");
      expect_same_aggregate(recorded_agg, pooled_agg, label + " pooled agg");
    }
  }
}

TEST(TraceReplay, StepLimitStarvedTrialsReplayBitForBit) {
  // A starved recording ends mid-election; its replay must starve at the
  // same step with the same partial progress, on both replay paths.
  const sim::LeBuilder builder =
      algo::sim_builder(algo::AlgorithmId::kCombinedSift);
  Kernel::Options tiny;
  tiny.step_limit = 11;
  std::vector<LeRunResult> recorded;
  const CellTrace cell = record_stream(
      builder, algo::adversary_factory(algo::AdversaryId::kUniformRandom), 6,
      6, 3, /*seed0=*/5, tiny, &recorded);
  ASSERT_FALSE(recorded[0].completed);

  exec::TrialWorkspace workspace;
  for (int t = 0; t < 3; ++t) {
    const TrialTrace& trial = cell.trials[static_cast<std::size_t>(t)];
    ReplayAdversary fresh_replay(&trial.actions);
    const LeRunResult fresh =
        run_le_once(builder, 6, 6, fresh_replay, trial.trial_seed, tiny);
    ReplayAdversary pooled_replay(&trial.actions);
    const LeRunResult pooled = workspace.run_le_once(
        0, builder, 6, 6, pooled_replay, trial.trial_seed, tiny);
    expect_same_result(recorded[static_cast<std::size_t>(t)], fresh,
                       "starved fresh " + std::to_string(t));
    expect_same_result(recorded[static_cast<std::size_t>(t)], pooled,
                       "starved pooled " + std::to_string(t));
  }
}

TEST(TraceReplay, DivergenceFailsLoudly) {
  const sim::LeBuilder builder =
      algo::sim_builder(algo::AlgorithmId::kLogStarChain);
  std::vector<LeRunResult> recorded;
  CellTrace cell = record_stream(
      builder, algo::adversary_factory(algo::AdversaryId::kUniformRandom), 4,
      4, 1, /*seed0=*/3, Kernel::Options{}, &recorded);
  TrialTrace& trial = cell.trials[0];

  // Replaying with the wrong seed changes the coin flips: the run takes a
  // different path, and either the schedule stops fitting (throw) or the
  // observable digest disagrees -- silently matching is the one forbidden
  // outcome.
  bool diverged = false;
  try {
    ReplayAdversary replay(&trial.actions);
    const LeRunResult result =
        run_le_once(builder, 4, 4, replay, trial.trial_seed + 1);
    diverged = !replay_mismatch(trial, result).empty();
  } catch (const Error&) {
    diverged = true;
  }
  EXPECT_TRUE(diverged);

  // A truncated schedule exhausts mid-run.
  ASSERT_GT(trial.actions.size(), 2u);
  trial.actions.resize(trial.actions.size() / 2);
  ReplayAdversary truncated(&trial.actions);
  EXPECT_THROW(run_le_once(builder, 4, 4, truncated, trial.trial_seed), Error);
}

}  // namespace
}  // namespace rts::sim
