// Hardware-platform tests: the same algorithm templates on real threads and
// std::atomic registers, selected from the unified algo::AlgorithmId
// catalogue.  Stress: exactly one winner across many trials for every
// hw-capable algorithm; ops accounting; the combiner's nested fibers inside
// ordinary threads; the shared exec::TrialSummary contract.
#include <gtest/gtest.h>

#include <thread>

#include "hw/harness.hpp"
#include "hw/platform.hpp"

namespace rts::hw {
namespace {

TEST(HwPlatform, RegisterPoolStableAddresses) {
  RegisterPool pool;
  RegisterCell* first = pool.alloc();
  for (int i = 0; i < 1000; ++i) pool.alloc();
  EXPECT_EQ(pool.allocated(), 1001u);
  first->value.store(7);
  EXPECT_EQ(first->value.load(), 7u);
}

TEST(HwPlatform, ContextCountsOps) {
  RegisterPool pool;
  HwPlatform::Arena arena(pool);
  support::PrngSource rng(1);
  HwPlatform::Context ctx(0, rng);
  HwPlatform::Reg reg = arena.reg("r");
  reg.write(ctx, 42);
  EXPECT_EQ(reg.read(ctx), 42u);
  EXPECT_EQ(ctx.ops(), 2u);
}

class HwAlgorithms : public ::testing::TestWithParam<algo::AlgorithmId> {};

TEST_P(HwAlgorithms, SingleThreadWins) {
  const HwRunResult r = run_hw_le(GetParam(), /*k=*/1, /*seed=*/1);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.winners, 1);
  EXPECT_EQ(r.outcomes[0], sim::Outcome::kWin);
}

TEST_P(HwAlgorithms, ManyThreadsExactlyOneWinner) {
  const int hw_threads =
      std::max(2u, std::thread::hardware_concurrency());
  for (const int k : {2, 4, hw_threads * 2}) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const HwRunResult r = run_hw_le(GetParam(), k, seed);
      ASSERT_TRUE(r.violations.empty())
          << algo::info(GetParam()).name << " k=" << k << " seed=" << seed
          << ": " << r.violations.front();
      EXPECT_EQ(r.winners, 1);
    }
  }
}

// Every hw-capable algorithm in the catalogue, including the three that
// used to be sim-only in the pre-unification hw enum (ratrace,
// combined-sift, aa) and the hw-only native baseline.
INSTANTIATE_TEST_SUITE_P(
    All, HwAlgorithms,
    ::testing::Values(
        algo::AlgorithmId::kLogStarChain, algo::AlgorithmId::kSiftChain,
        algo::AlgorithmId::kSiftCascade, algo::AlgorithmId::kRatRace,
        algo::AlgorithmId::kRatRacePath, algo::AlgorithmId::kCombinedLogStar,
        algo::AlgorithmId::kCombinedSift, algo::AlgorithmId::kTournament,
        algo::AlgorithmId::kAaSiftRatRace, algo::AlgorithmId::kNativeAtomic),
    [](const auto& info) {
      std::string name = algo::info(info.param).name;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(HwHarness, StressCombinedManyTrials) {
  // The combiner exercises nested fibers inside real threads; hammer it.
  const exec::Aggregate agg = run_hw_many(
      algo::AlgorithmId::kCombinedLogStar, /*k=*/4, /*trials=*/50, 3);
  EXPECT_EQ(agg.runs, 50);
  EXPECT_EQ(agg.violation_runs, 0);
  EXPECT_GT(agg.max_steps.mean(), 0.0);
  EXPECT_GT(agg.wall_seconds.mean(), 0.0);
}

TEST(HwHarness, OpsScaleWithAlgorithm) {
  // The native baseline is 1 op; register-based algorithms cost more.
  const HwRunResult native =
      run_hw_le(algo::AlgorithmId::kNativeAtomic, 4, 1);
  const HwRunResult logstar =
      run_hw_le(algo::AlgorithmId::kLogStarChain, 4, 1);
  std::uint64_t native_max = 0;
  std::uint64_t logstar_max = 0;
  for (const auto ops : native.ops) native_max = std::max(native_max, ops);
  for (const auto ops : logstar.ops) logstar_max = std::max(logstar_max, ops);
  EXPECT_EQ(native_max, 1u);
  EXPECT_GT(logstar_max, 1u);
}

TEST(HwHarness, SummarizeTrialFillsTheSharedContract) {
  const HwRunResult r = run_hw_le(algo::AlgorithmId::kTournament, 4, 9);
  const exec::TrialSummary trial = summarize_trial(r);
  EXPECT_EQ(trial.backend, exec::Backend::kHw);
  EXPECT_EQ(trial.k, 4);
  EXPECT_GT(trial.max_steps, 0u);
  EXPECT_GE(trial.total_steps, trial.max_steps);
  EXPECT_EQ(trial.regs_touched, r.registers);
  EXPECT_EQ(trial.declared_registers, r.declared_registers);
  EXPECT_GT(trial.declared_registers, 0u);
  EXPECT_EQ(trial.unfinished, 0);
  EXPECT_TRUE(trial.crash_free);
  EXPECT_TRUE(trial.completed);
  EXPECT_GE(trial.wall_seconds, 0.0);
  EXPECT_TRUE(trial.first_violation.empty());
}

TEST(HwHarness, DeprecatedAliasStillNamesTheUnifiedCatalogue) {
  static_assert(std::is_same_v<HwAlgorithmId, algo::AlgorithmId>);
  const HwRunResult r = run_hw_le(HwAlgorithmId::kNativeAtomic, 2, 5);
  EXPECT_EQ(r.winners, 1);
}

}  // namespace
}  // namespace rts::hw
