// Tests for the Alistarh-Aspnes construction (sifting + RatRace backup) and
// the 2-process consensus reduction.
//
// The AA algorithm is the paper's reference point for "graceful
// degradation": fast against weak adversaries, still O(log n) against the
// adaptive attack (unlike the pure chains, which degrade to Theta(k)).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "algo/aa.hpp"
#include "algo/attacks.hpp"
#include "algo/consensus2.hpp"
#include "algo/registry.hpp"
#include "algo/sim_platform.hpp"
#include "sim/model_check.hpp"
#include "sim/runner.hpp"
#include "sim_harness.hpp"

namespace rts::algo {
namespace {

using rts::testing::SchedKind;
using rts::testing::SimHarness;
using P = SimPlatform;

class AaSweep : public ::testing::TestWithParam<std::tuple<int, SchedKind>> {};

TEST_P(AaSweep, ExactlyOneWinner) {
  const auto [k, sched] = GetParam();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto adversary = rts::testing::make_adversary(sched, seed);
    const auto r = sim::run_le_once(
        sim_builder(AlgorithmId::kAaSiftRatRace), k, k, *adversary, seed);
    EXPECT_TRUE(r.violations.empty()) << r.violations.front();
    EXPECT_EQ(r.winners, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Contention, AaSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 16, 64),
                       ::testing::Values(SchedKind::kSequential,
                                         SchedKind::kRoundRobin,
                                         SchedKind::kRandom)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_" +
             rts::testing::to_string(std::get<1>(info.param));
    });

TEST(Aa, GracefulDegradationUnderAttack) {
  // The paper's observation: unlike the bare chains, AA degrades only to
  // O(log n) against the adaptive adversary because RatRace does the work
  // once sifting is neutralized.
  const AttackResult aa_128 = run_attack(
      AlgorithmId::kAaSiftRatRace, AttackKind::kGroupElectionNeutralizer,
      128, 1);
  const AttackResult chain_128 = run_attack(
      AlgorithmId::kSiftChain, AttackKind::kGroupElectionNeutralizer, 128, 1);
  EXPECT_TRUE(aa_128.violations.empty());
  EXPECT_LT(aa_128.max_steps, 400u) << "logarithmic-ish, not linear";
  EXPECT_LT(aa_128.max_steps * 3, chain_128.max_steps)
      << "the bare sift chain must be much worse under the same attack";
}

TEST(Aa, SpaceIsLinear) {
  SimHarness harness;
  AaSiftRatRaceLe<P> le(harness.arena(), 256);
  EXPECT_LE(le.declared_registers(), 60u * 256u);
  EXPECT_GT(le.sift_rounds(), 1);
  EXPECT_LE(le.sift_rounds(), 12);
}

// --- 2-process consensus ----------------------------------------------------

TEST(Consensus2, SoloDecidesOwnValue) {
  for (int side = 0; side < 2; ++side) {
    SimHarness harness;
    auto cons = std::make_shared<TwoProcessConsensus<P>>(harness.arena());
    std::uint64_t decided = 99;
    harness.add([cons, side, &decided](sim::Context& ctx) {
      decided = cons->decide(ctx, side, 7);
    }, 1);
    sim::SequentialAdversary seq;
    ASSERT_TRUE(harness.run(seq));
    EXPECT_EQ(decided, 7u);
  }
}

TEST(Consensus2, AgreementAndValidityUnderFuzz) {
  for (std::uint64_t seed = 0; seed < 2000; ++seed) {
    SimHarness harness;
    auto cons = std::make_shared<TwoProcessConsensus<P>>(harness.arena());
    std::uint64_t decided[2] = {99, 99};
    const std::uint64_t proposed[2] = {10 + seed % 3, 20 + seed % 5};
    for (int side = 0; side < 2; ++side) {
      harness.add(
          [cons, side, &decided, &proposed](sim::Context& ctx) {
            decided[side] = cons->decide(ctx, side, proposed[side]);
          },
          support::derive_seed(seed, side));
    }
    sim::UniformRandomAdversary adversary(support::derive_seed(seed, 42));
    ASSERT_TRUE(harness.run(adversary));
    EXPECT_EQ(decided[0], decided[1]) << "agreement, seed " << seed;
    EXPECT_TRUE(decided[0] == proposed[0] || decided[0] == proposed[1])
        << "validity, seed " << seed;
  }
}

TEST(Consensus2, ExhaustiveAgreementModelCheck) {
  std::uint64_t decided[2];
  bool done[2];
  const auto build = [&](sim::Kernel& kernel, support::RandomSource& coins) {
    decided[0] = decided[1] = 0;
    done[0] = done[1] = false;
    P::Arena arena(kernel.memory());
    auto cons = std::make_shared<TwoProcessConsensus<P>>(arena);
    for (int side = 0; side < 2; ++side) {
      kernel.add_process(
          [cons, side, &decided, &done](sim::Context& ctx) {
            decided[side] = cons->decide(
                ctx, side, static_cast<std::uint64_t>(100 + side));
            done[side] = true;
          },
          std::make_unique<sim::SharedSource>(coins));
    }
  };
  const auto stepwise = [&](const sim::Kernel&) -> std::string {
    if (done[0] && done[1] && decided[0] != decided[1]) {
      return "disagreement";
    }
    for (int side = 0; side < 2; ++side) {
      if (done[side] && decided[side] != 100 && decided[side] != 101) {
        return "invalid decision value";
      }
    }
    return "";
  };
  sim::ExploreOptions options;
  options.max_decisions = 24;
  options.max_runs = 400'000;
  const auto result = sim::explore_all(
      build, stepwise, [](const sim::Kernel&) { return std::string(); },
      options);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_GT(result.completed_runs, 1000u);
}

TEST(Consensus2, ConstantExpectedSteps) {
  support::Accumulator steps;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    SimHarness harness;
    auto cons = std::make_shared<TwoProcessConsensus<P>>(harness.arena());
    for (int side = 0; side < 2; ++side) {
      harness.add(
          [cons, side](sim::Context& ctx) { cons->decide(ctx, side, 1); },
          support::derive_seed(seed, side));
    }
    sim::UniformRandomAdversary adversary(seed);
    ASSERT_TRUE(harness.run(adversary));
    steps.add(static_cast<double>(
        std::max(harness.kernel().steps(0), harness.kernel().steps(1))));
  }
  EXPECT_LT(steps.mean(), 16.0);
}

TEST(Consensus2, UsesFourRegisters) {
  SimHarness harness;
  TwoProcessConsensus<P> cons(harness.arena());
  EXPECT_EQ(harness.kernel().memory().allocated(),
            TwoProcessConsensus<P>::kRegisters);
}

}  // namespace
}  // namespace rts::algo
