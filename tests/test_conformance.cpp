// Tests for the differential conformance harness (exec/conformance.hpp) and
// the campaign-level record/replay wiring:
//
//  * golden .rtst traces checked into tests/golden/ must replay cleanly
//    through fresh sim, pooled sim, and the scheduled hw drive -- the
//    file-backed regression oracle for the whole execution stack,
//  * freshly recorded cells must conform the same way,
//  * tampered traces must be caught, never absorbed,
//  * a campaign recorded with ExecutorOptions::record_dir and replayed with
//    replay_dir must reproduce identical reporter bytes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "campaign/executor.hpp"
#include "campaign/reporter.hpp"
#include "exec/conformance.hpp"
#include "sim/adversaries.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"

namespace rts::exec {
namespace {

std::string golden_dir() { return std::string(RTS_TEST_DATA_DIR) + "/golden"; }

std::string fresh_temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "rts-" + name + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Records one (algorithm, adversary) stream the way the campaign executor
/// does, returning a self-contained cell trace.
sim::CellTrace record_cell(algo::AlgorithmId algorithm,
                           algo::AdversaryId adversary, int n, int k,
                           int trials, std::uint64_t seed0) {
  const sim::LeBuilder builder = algo::sim_builder(algorithm);
  const sim::AdversaryFactory factory = algo::adversary_factory(adversary);
  sim::CellTrace cell;
  cell.campaign = "test";
  cell.algorithm = algo::info(algorithm).name;
  cell.adversary = algo::info(adversary).name;
  cell.n = static_cast<std::uint32_t>(n);
  cell.k = static_cast<std::uint32_t>(k);
  cell.seed0 = seed0;
  cell.step_limit = sim::Kernel::Options{}.step_limit;
  for (int t = 0; t < trials; ++t) {
    sim::TrialTrace trial;
    trial.trial_seed = sim::trial_seed(seed0, t);
    trial.adversary_seed = sim::adversary_seed(trial.trial_seed);
    const auto inner = factory(trial.adversary_seed);
    sim::RecordingAdversary recorder(*inner, &trial.actions);
    const sim::LeRunResult result =
        sim::run_le_once(builder, n, k, recorder, trial.trial_seed);
    sim::fill_trace_result(trial, result);
    cell.trials.push_back(std::move(trial));
  }
  return cell;
}

TEST(Conformance, GoldenTracesConformAcrossAllPaths) {
  // The acceptance oracle: every checked-in golden trace replays
  // bit-for-bit through the fresh and pooled sim paths and -- all golden
  // cells are hw-expressible -- through the scheduled hw drive on real
  // std::atomic registers.  A failure here means the execution stack no
  // longer reproduces schedules it once produced: a behavioral regression,
  // or an intentional change that requires regenerating the goldens (see
  // tests/golden/README.md).
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(golden_dir())) {
    if (entry.path().extension() == ".rtst") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  ASSERT_FALSE(paths.empty()) << "no golden traces in " << golden_dir();

  for (const std::string& path : paths) {
    sim::CellTrace cell;
    std::string error;
    ASSERT_TRUE(sim::read_cell_trace_file(path, &cell, &error))
        << path << ": " << error;
    ASSERT_FALSE(cell.trials.empty()) << path;
    EXPECT_TRUE(hw_expressible(cell)) << path;

    const ConformanceReport report = check_cell(cell);
    EXPECT_TRUE(report.ok()) << path << ": "
                             << (report.mismatches.empty()
                                     ? ""
                                     : report.mismatches.front());
    EXPECT_EQ(report.trials_checked,
              static_cast<int>(cell.trials.size()))
        << path;
    EXPECT_EQ(report.fresh_runs, report.trials_checked) << path;
    EXPECT_EQ(report.pooled_runs, report.trials_checked) << path;
    EXPECT_EQ(report.hw_runs, report.trials_checked) << path;
  }
}

TEST(Conformance, FreshlyRecordedCellsConform) {
  // Same property, source-independent: anything recorded now conforms now.
  // Includes a crash-schedule cell (abandoned participants on all three
  // paths) and the combiner (child-fiber ops on the hw drive).
  const struct {
    algo::AlgorithmId algorithm;
    algo::AdversaryId adversary;
  } cases[] = {
      {algo::AlgorithmId::kLogStarChain, algo::AdversaryId::kUniformRandom},
      {algo::AlgorithmId::kCombinedSift, algo::AdversaryId::kCrashAfterOps},
      {algo::AlgorithmId::kRatRacePath, algo::AdversaryId::kRoundRobin},
  };
  for (const auto& c : cases) {
    const sim::CellTrace cell =
        record_cell(c.algorithm, c.adversary, 6, 6, 4, /*seed0=*/321);
    const ConformanceReport report = check_cell(cell);
    const std::string label = cell.algorithm + " / " + cell.adversary;
    EXPECT_TRUE(report.ok())
        << label << ": "
        << (report.mismatches.empty() ? "" : report.mismatches.front());
    EXPECT_EQ(report.hw_runs, 4) << label;
  }
}

TEST(Conformance, TamperedSchedulesAndDigestsAreCaught) {
  sim::CellTrace cell = record_cell(algo::AlgorithmId::kTournament,
                                    algo::AdversaryId::kUniformRandom, 5, 5,
                                    2, /*seed0=*/9);
  {
    // A digest that disagrees with the actual replay: every path reports.
    sim::CellTrace tampered = cell;
    tampered.trials[0].total_steps += 1;
    const ConformanceReport report = check_cell(tampered);
    EXPECT_FALSE(report.ok());
  }
  {
    // A truncated schedule: the sim replays throw (captured as
    // mismatches), and with no trusted sim reference the hw drive for that
    // trial is skipped rather than trusted blindly.
    sim::CellTrace tampered = cell;
    tampered.trials[1].actions.resize(3);
    const ConformanceReport report = check_cell(tampered);
    EXPECT_FALSE(report.ok());
    EXPECT_LT(report.hw_runs, report.trials_checked);
  }
}

TEST(Conformance, MaxTrialsAndPathToggles) {
  const sim::CellTrace cell = record_cell(algo::AlgorithmId::kSiftCascade,
                                          algo::AdversaryId::kUniformRandom,
                                          6, 6, 5, /*seed0=*/13);
  ConformanceOptions options;
  options.max_trials = 2;
  options.hw = false;
  const ConformanceReport report = check_cell(cell, options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.trials_checked, 2);
  EXPECT_EQ(report.hw_runs, 0);
}

TEST(RecordReplayCampaign, ReporterBytesAreBitwiseIdentical) {
  // The CLI acceptance path in miniature: --record then --replay of one
  // campaign (random + crash adversaries, two algorithms) must reproduce
  // the recorded run's reporter bytes exactly, through every reporter.
  campaign::CampaignSpec spec;
  spec.name = "rr-test";
  spec.algorithms = {algo::AlgorithmId::kLogStarChain,
                     algo::AlgorithmId::kCombinedSift};
  spec.adversaries = {algo::AdversaryId::kUniformRandom,
                      algo::AdversaryId::kCrashAfterOps};
  spec.ks = {2, 6};
  spec.trials = 5;
  spec.seed = 2025;
  spec.seed_policy = campaign::SeedPolicy::kPerCell;

  const std::string dir = fresh_temp_dir("record-replay");
  campaign::ExecutorOptions record;
  record.workers = 3;
  record.record_dir = dir;
  const campaign::CampaignResult recorded =
      campaign::run_campaign(spec, record);
  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/" +
                                      sim::cell_trace_filename(0)));

  campaign::ExecutorOptions replay;
  replay.workers = 2;  // worker count must not matter, as ever
  replay.replay_dir = dir;
  const campaign::CampaignResult replayed =
      campaign::run_campaign(spec, replay);
  for (const campaign::CellResult& cell : replayed.cells) {
    EXPECT_EQ(cell.error_runs, 0)
        << "cell " << cell.cell.index << ": "
        << (cell.first_errors.empty() ? "" : cell.first_errors.front());
  }
  EXPECT_EQ(campaign::render_to_string(recorded, campaign::ReportFormat::kJsonl),
            campaign::render_to_string(replayed, campaign::ReportFormat::kJsonl));
  EXPECT_EQ(campaign::render_to_string(recorded, campaign::ReportFormat::kCsv),
            campaign::render_to_string(replayed, campaign::ReportFormat::kCsv));
  EXPECT_EQ(campaign::render_to_string(recorded, campaign::ReportFormat::kTable),
            campaign::render_to_string(replayed, campaign::ReportFormat::kTable));

  // A drifted spec must refuse to replay at all (validated before running).
  campaign::CampaignSpec drifted = spec;
  drifted.seed = 2026;
  EXPECT_THROW(campaign::run_campaign(drifted, replay), Error);

  // A trace whose digest was falsified replays loudly: errored trials.
  sim::CellTrace cell;
  std::string error;
  const std::string cell0 = dir + "/" + sim::cell_trace_filename(0);
  ASSERT_TRUE(sim::read_cell_trace_file(cell0, &cell, &error)) << error;
  cell.trials[0].max_steps += 1;
  ASSERT_TRUE(sim::write_cell_trace_file(cell0, cell, &error)) << error;
  const campaign::CampaignResult poisoned =
      campaign::run_campaign(spec, replay);
  EXPECT_EQ(poisoned.cells[0].error_runs, 1);
  ASSERT_FALSE(poisoned.cells[0].first_errors.empty());
  EXPECT_NE(poisoned.cells[0].first_errors[0].find("replay mismatch"),
            std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST(RecordReplayCampaign, RecordingDoesNotChangeReporterBytes) {
  // Recording must be pure observation: a recorded run's reporter bytes
  // equal a plain run's, so --record can be bolted onto any campaign
  // without invalidating its numbers.
  campaign::CampaignSpec spec;
  spec.name = "observe-test";
  spec.algorithms = {algo::AlgorithmId::kRatRacePath};
  spec.adversaries = {algo::AdversaryId::kCrashAfterOps};
  spec.ks = {4};
  spec.trials = 6;
  spec.seed = 77;

  const campaign::CampaignResult plain = campaign::run_campaign(spec);
  const std::string dir = fresh_temp_dir("record-observe");
  campaign::ExecutorOptions record;
  record.record_dir = dir;
  const campaign::CampaignResult recorded =
      campaign::run_campaign(spec, record);
  EXPECT_EQ(campaign::render_to_string(plain, campaign::ReportFormat::kJsonl),
            campaign::render_to_string(recorded,
                                       campaign::ReportFormat::kJsonl));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rts::exec
