// Additional bounded-exhaustive verification beyond test_le2/test_splitter:
// the 3-process leader election, the randomized splitter, the Figure-1
// group election, and a 2-process end-to-end chain -- each checked over
// every schedule and coin outcome within a decision budget.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "algo/chain.hpp"
#include "algo/group_elect.hpp"
#include "algo/le3.hpp"
#include "algo/sim_platform.hpp"
#include "algo/splitter.hpp"
#include "sim/adversaries.hpp"
#include "sim/model_check.hpp"
#include "sim/trace.hpp"

namespace rts::algo {
namespace {

using sim::Outcome;
using P = SimPlatform;

TEST(ExhaustiveLe3, ThreeRolesAtMostOneWinner) {
  Outcome outcomes[3];
  const auto build = [&outcomes](sim::Kernel& kernel,
                                 support::RandomSource& coins) {
    outcomes[0] = outcomes[1] = outcomes[2] = Outcome::kUnknown;
    P::Arena arena(kernel.memory());
    auto le = std::make_shared<Le3<P>>(arena);
    for (int role = 0; role < 3; ++role) {
      kernel.add_process(
          [le, role, &outcomes](sim::Context& ctx) {
            outcomes[role] = le->elect(ctx, role);
          },
          std::make_unique<sim::SharedSource>(coins));
    }
  };
  const auto stepwise = [&outcomes](const sim::Kernel&) -> std::string {
    int winners = 0;
    for (const Outcome o : outcomes) winners += (o == Outcome::kWin) ? 1 : 0;
    if (winners > 1) return "two winners in LE3";
    return "";
  };
  const auto terminal = [&outcomes](const sim::Kernel&) -> std::string {
    int winners = 0;
    for (const Outcome o : outcomes) winners += (o == Outcome::kWin) ? 1 : 0;
    if (winners != 1) return "LE3 completed without exactly one winner";
    return "";
  };
  sim::ExploreOptions options;
  options.max_decisions = 20;
  options.max_runs = 400'000;
  const auto result = sim::explore_all(build, stepwise, terminal, options);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_GT(result.completed_runs, 500u);
}

TEST(ExhaustiveRSplitter, TwoProcessAtMostOneStop) {
  SplitResult results[2];
  const auto build = [&results](sim::Kernel& kernel,
                                support::RandomSource& coins) {
    results[0] = results[1] = SplitResult::kLeft;
    P::Arena arena(kernel.memory());
    auto rs = std::make_shared<RSplitter<P>>(arena);
    for (int p = 0; p < 2; ++p) {
      kernel.add_process(
          [rs, &results, p](sim::Context& ctx) { results[p] = rs->split(ctx); },
          std::make_unique<sim::SharedSource>(coins));
    }
  };
  const auto terminal = [&results](const sim::Kernel&) -> std::string {
    int stops = 0;
    for (const SplitResult r : results) {
      stops += (r == SplitResult::kStop) ? 1 : 0;
    }
    if (stops > 1) return "two stops in rsplitter";
    return "";
  };
  const auto result = sim::explore_all(
      build, [](const sim::Kernel&) { return std::string(); }, terminal);
  EXPECT_TRUE(result.exhausted) << "rsplitter space is finite";
  EXPECT_FALSE(result.violation_found) << result.violation;
}

TEST(ExhaustiveFig1, SomeoneAlwaysElected) {
  // Fig-1 group election with 2 processes, every schedule and every level
  // choice: at least one participant must be elected in every complete run.
  int elected_count = 0;
  int finished = 0;
  const auto build = [&](sim::Kernel& kernel, support::RandomSource& coins) {
    elected_count = 0;
    finished = 0;
    P::Arena arena(kernel.memory());
    auto ge = std::make_shared<Fig1GroupElect<P>>(arena, /*n=*/4);
    for (int p = 0; p < 2; ++p) {
      kernel.add_process(
          [ge, &elected_count, &finished](sim::Context& ctx) {
            if (ge->elect(ctx)) ++elected_count;
            ++finished;
          },
          std::make_unique<sim::SharedSource>(coins));
    }
  };
  const auto terminal = [&](const sim::Kernel&) -> std::string {
    if (finished == 2 && elected_count < 1) return "nobody elected";
    return "";
  };
  const auto result = sim::explore_all(
      build, [](const sim::Kernel&) { return std::string(); }, terminal);
  EXPECT_TRUE(result.exhausted);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_GT(result.completed_runs, 50u);
}

TEST(ExhaustiveChain, TwoProcessEndToEnd) {
  // A tiny full chain (length 2, live Fig-1 stages) with 2 processes:
  // exhaustively verify exactly-one-winner across every interleaving within
  // the budget.
  Outcome outcomes[2];
  const auto build = [&outcomes](sim::Kernel& kernel,
                                 support::RandomSource& coins) {
    outcomes[0] = outcomes[1] = Outcome::kUnknown;
    P::Arena arena(kernel.memory());
    auto chain = std::make_shared<GeChainLe<P>>(
        arena, 2, fig1_truncated_factory<P>(2, 2));
    for (int p = 0; p < 2; ++p) {
      kernel.add_process(
          [chain, &outcomes, p](sim::Context& ctx) {
            outcomes[p] = chain->elect(ctx);
          },
          std::make_unique<sim::SharedSource>(coins));
    }
  };
  const auto stepwise = [&outcomes](const sim::Kernel&) -> std::string {
    if (outcomes[0] == Outcome::kWin && outcomes[1] == Outcome::kWin) {
      return "two winners in chain";
    }
    return "";
  };
  const auto terminal = [&outcomes](const sim::Kernel&) -> std::string {
    const int winners = (outcomes[0] == Outcome::kWin ? 1 : 0) +
                        (outcomes[1] == Outcome::kWin ? 1 : 0);
    if (winners != 1) return "chain completed without exactly one winner";
    return "";
  };
  sim::ExploreOptions options;
  options.max_decisions = 26;
  options.max_runs = 600'000;
  const auto result = sim::explore_all(build, stepwise, terminal, options);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_GT(result.completed_runs, 1000u);
}

TEST(Trace, FormatsEventLog) {
  sim::Kernel::Options options;
  options.track_events = true;
  sim::Kernel kernel(options);
  const sim::RegId reg = kernel.memory().alloc("demo.reg");
  kernel.add_process(
      [reg](sim::Context& ctx) {
        ctx.write(reg, 5);
        ctx.read(reg);
      },
      std::make_unique<support::PrngSource>(1));
  sim::SequentialAdversary seq;
  ASSERT_TRUE(kernel.run(seq));
  const std::string trace = sim::format_trace(kernel);
  EXPECT_NE(trace.find("WRITE"), std::string::npos);
  EXPECT_NE(trace.find("READ"), std::string::npos);
  EXPECT_NE(trace.find("demo.reg"), std::string::npos);
  EXPECT_NE(trace.find("saw p0"), std::string::npos);
}

TEST(Trace, TruncatesLongLogs) {
  sim::Kernel::Options options;
  options.track_events = true;
  sim::Kernel kernel(options);
  const sim::RegId reg = kernel.memory().alloc("r");
  kernel.add_process(
      [reg](sim::Context& ctx) {
        for (int i = 0; i < 50; ++i) ctx.read(reg);
      },
      std::make_unique<support::PrngSource>(1));
  sim::SequentialAdversary seq;
  ASSERT_TRUE(kernel.run(seq));
  const std::string trace = sim::format_trace(kernel, 10);
  EXPECT_NE(trace.find("more)"), std::string::npos);
}

}  // namespace
}  // namespace rts::algo
