// Tests for the campaign subsystem: grid expansion, preset registry
// integrity, executor correctness (bitwise equal to the serial harness) and
// scheduling-independence (identical reporter bytes for 1, 2, and 8
// workers), and time-budget truncation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <string_view>

#include "campaign/cli.hpp"
#include "campaign/executor.hpp"
#include "campaign/presets.hpp"
#include "campaign/reporter.hpp"
#include "campaign/spec.hpp"

namespace rts::campaign {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "test";
  spec.algorithms = {algo::AlgorithmId::kLogStarChain,
                     algo::AlgorithmId::kRatRacePath};
  spec.adversaries = {algo::AdversaryId::kUniformRandom,
                      algo::AdversaryId::kRoundRobin};
  spec.ks = {2, 5, 8};
  spec.trials = 9;
  spec.seed = 77;
  return spec;
}

TEST(CampaignSpec, ExpandIsTheFullGridInDeterministicOrder) {
  const CampaignSpec spec = small_spec();
  const std::vector<CellSpec> cells = expand(spec);
  ASSERT_EQ(cells.size(), 2u * 2u * 3u);
  // Algorithms outermost, then adversaries, then the k sweep.
  EXPECT_EQ(cells[0].algorithm, algo::AlgorithmId::kLogStarChain);
  EXPECT_EQ(cells[0].adversary, algo::AdversaryId::kUniformRandom);
  EXPECT_EQ(cells[0].k, 2);
  EXPECT_EQ(cells[1].k, 5);
  EXPECT_EQ(cells[3].adversary, algo::AdversaryId::kRoundRobin);
  EXPECT_EQ(cells[6].algorithm, algo::AlgorithmId::kRatRacePath);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<int>(i));
    EXPECT_EQ(cells[i].n, cells[i].k);  // fixed_n = 0 => n = k
    EXPECT_EQ(cells[i].trials, spec.trials);
    EXPECT_EQ(cells[i].seed0, spec.seed);  // kSharedBase
  }
}

TEST(CampaignSpec, PerCellSeedPolicyGivesDistinctStreams) {
  CampaignSpec spec = small_spec();
  spec.seed_policy = SeedPolicy::kPerCell;
  const std::vector<CellSpec> cells = expand(spec);
  std::set<std::uint64_t> seeds;
  for (const CellSpec& cell : cells) seeds.insert(cell.seed0);
  EXPECT_EQ(seeds.size(), cells.size());
}

TEST(CampaignSpec, FixedNOverridesCapacity) {
  CampaignSpec spec = small_spec();
  spec.fixed_n = 64;
  for (const CellSpec& cell : expand(spec)) EXPECT_EQ(cell.n, 64);
}

TEST(CampaignSpec, ValidateCatchesNonsense) {
  EXPECT_TRUE(validate(small_spec()).empty());

  CampaignSpec no_algos = small_spec();
  no_algos.algorithms.clear();
  EXPECT_FALSE(validate(no_algos).empty());

  CampaignSpec bad_k = small_spec();
  bad_k.ks = {0};
  EXPECT_FALSE(validate(bad_k).empty());

  CampaignSpec k_over_n = small_spec();
  k_over_n.fixed_n = 4;  // ks include 5 and 8
  EXPECT_FALSE(validate(k_over_n).empty());
}

TEST(CampaignExecutor, MatchesSerialRunLeManyBitwise) {
  CampaignSpec spec = small_spec();
  ExecutorOptions options;
  options.workers = 3;
  const CampaignResult result = run_campaign(spec, options);
  ASSERT_EQ(result.cells.size(), expand(spec).size());

  for (const CellResult& cell : result.cells) {
    const sim::LeAggregate expected = sim::run_le_many(
        algo::sim_builder(cell.cell.algorithm), cell.cell.n, cell.cell.k,
        algo::adversary_factory(cell.cell.adversary), cell.cell.trials,
        cell.cell.seed0);
    EXPECT_EQ(cell.trials_run, spec.trials);
    EXPECT_EQ(cell.agg.runs, expected.runs);
    EXPECT_EQ(cell.agg.violation_runs, expected.violation_runs);
    // Bitwise: the executor folds the same per-trial values in the same
    // order as the serial loop.
    EXPECT_EQ(cell.agg.max_steps.mean(), expected.max_steps.mean());
    EXPECT_EQ(cell.agg.max_steps.max(), expected.max_steps.max());
    EXPECT_EQ(cell.agg.mean_steps.mean(), expected.mean_steps.mean());
    EXPECT_EQ(cell.agg.total_steps.mean(), expected.total_steps.mean());
    EXPECT_EQ(cell.agg.regs_touched.mean(), expected.regs_touched.mean());
    EXPECT_GT(cell.declared_registers, 0u);
  }
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.sim_steps, 0u);
}

TEST(CampaignExecutor, ReportBytesIdenticalForAnyWorkerCount) {
  const CampaignSpec spec = small_spec();
  std::string reference_jsonl;
  std::string reference_csv;
  for (const int workers : {1, 2, 8}) {
    ExecutorOptions options;
    options.workers = workers;
    const CampaignResult result = run_campaign(spec, options);
    const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
    const std::string csv = render_to_string(result, ReportFormat::kCsv);
    const std::string table = render_to_string(result, ReportFormat::kTable);
    EXPECT_FALSE(jsonl.empty());
    EXPECT_NE(table.find("logstar"), std::string::npos);
    if (reference_jsonl.empty()) {
      reference_jsonl = jsonl;
      reference_csv = csv;
    } else {
      EXPECT_EQ(jsonl, reference_jsonl) << "workers=" << workers;
      EXPECT_EQ(csv, reference_csv) << "workers=" << workers;
    }
  }
}

TEST(CampaignExecutor, OversubscribedWorkersStillCoverEveryTrial) {
  CampaignSpec spec = small_spec();
  spec.ks = {2};
  spec.trials = 3;  // 4 cells x 3 trials = 12 trials, 16 workers
  ExecutorOptions options;
  options.workers = 16;
  const CampaignResult result = run_campaign(spec, options);
  for (const CellResult& cell : result.cells) {
    EXPECT_EQ(cell.trials_run, 3);
  }
  EXPECT_FALSE(result.truncated);
}

TEST(CampaignExecutor, TimeBudgetTruncatesAndFlags) {
  CampaignSpec spec = small_spec();
  ExecutorOptions options;
  options.workers = 2;
  options.time_budget_seconds = 1e-9;  // expires before any claim
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_TRUE(result.truncated);
  std::uint64_t run = 0;
  for (const CellResult& cell : result.cells) {
    run += static_cast<std::uint64_t>(cell.trials_run);
  }
  EXPECT_EQ(run, 0u);
  // Truncation must be visible in machine output.
  const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"truncated\":true"), std::string::npos);
}

TEST(CampaignExecutor, ProgressCallbackFires) {
  CampaignSpec spec = small_spec();
  spec.ks = {2};
  int calls = 0;
  Progress last;
  ExecutorOptions options;
  options.workers = 2;
  options.progress_interval_seconds = 0.0001;
  options.on_progress = [&](const Progress& progress) {
    ++calls;
    last = progress;
  };
  run_campaign(spec, options);
  EXPECT_GE(calls, 1);
  EXPECT_EQ(last.trials_done, last.trials_total);
  EXPECT_EQ(last.trials_total, 36u);  // 2 algos x 2 advs x 1 k x 9 trials
}

TEST(CampaignPresets, RegistryIsWellFormed) {
  std::set<std::string> names;
  for (const Preset& preset : all_presets()) {
    EXPECT_TRUE(names.insert(preset.name).second)
        << "duplicate preset " << preset.name;
    EXPECT_EQ(validate(preset.spec), "") << preset.name;
    EXPECT_EQ(preset.spec.name, preset.name);
    EXPECT_NE(find_preset(preset.name), nullptr);
  }
  EXPECT_EQ(find_preset("no-such-preset"), nullptr);
}

TEST(CampaignPresets, RatracePresetFreezesTheHistoricalTableParameters) {
  // `rts_bench --preset ratrace` must regenerate the bench_ratrace step
  // table: same algorithms, sweep, trial count, and seed stream.
  const Preset* preset = find_preset("ratrace");
  ASSERT_NE(preset, nullptr);
  EXPECT_EQ(preset->spec.seed, 21u);
  EXPECT_EQ(preset->spec.trials, 100);
  EXPECT_EQ(preset->spec.seed_policy, SeedPolicy::kSharedBase);
  ASSERT_EQ(preset->spec.algorithms.size(), 2u);
  EXPECT_EQ(preset->spec.algorithms[0], algo::AlgorithmId::kRatRace);
  EXPECT_EQ(preset->spec.algorithms[1], algo::AlgorithmId::kRatRacePath);
  EXPECT_EQ(preset->spec.ks, standard_contention_sweep());
}

TEST(CampaignReporter, FormatsParseAndRender) {
  EXPECT_EQ(parse_format("table"), ReportFormat::kTable);
  EXPECT_EQ(parse_format("jsonl"), ReportFormat::kJsonl);
  EXPECT_EQ(parse_format("json"), ReportFormat::kJsonl);
  EXPECT_EQ(parse_format("csv"), ReportFormat::kCsv);
  EXPECT_EQ(parse_format("xml"), std::nullopt);

  CampaignSpec spec = small_spec();
  spec.ks = {2};
  spec.trials = 2;
  const CampaignResult result = run_campaign(spec);
  const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"type\":\"campaign\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"cell\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"algorithm\":\"ratrace-path\""), std::string::npos);
  const std::string csv = render_to_string(result, ReportFormat::kCsv);
  EXPECT_NE(csv.find("campaign,algorithm,adversary"), std::string::npos);
  // Header + one row per cell.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<long>(1 + result.cells.size()));
}

TEST(CampaignExecutor, TinyStepLimitShowsUpAsIncompleteRuns) {
  CampaignSpec spec = small_spec();
  spec.algorithms = {algo::AlgorithmId::kRatRacePath};
  spec.adversaries = {algo::AdversaryId::kUniformRandom};
  spec.ks = {8};
  spec.trials = 4;
  spec.step_limit = 5;  // far below any real election
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].incomplete_runs, 4);
  EXPECT_EQ(result.cells[0].error_runs, 0);
  EXPECT_EQ(result.cells[0].trials_run, 4);
  const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"incomplete_runs\":4"), std::string::npos);
}

TEST(CampaignExecutor, AdversaryGridActuallyChangesSchedules) {
  // Same algorithm and seed under different schedulers must (generically)
  // give different step counts -- guards against the adversary dimension
  // being silently ignored.
  CampaignSpec spec = small_spec();
  spec.algorithms = {algo::AlgorithmId::kRatRacePath};
  spec.ks = {8};
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_NE(result.cells[0].agg.total_steps.mean(),
            result.cells[1].agg.total_steps.mean());
}

TEST(CampaignSpec, BackendAxisExpandsOutermost) {
  CampaignSpec spec = small_spec();
  spec.backends = {exec::Backend::kSim, exec::Backend::kHw};
  const std::vector<CellSpec> cells = expand(spec);
  // 2 algos x 2 adversaries x 3 ks sim cells; the hw half collapses the
  // adversary axis (hw ignores it), leaving 2 algos x 3 ks.
  const std::size_t sim_count = 2u * 2u * 3u;
  ASSERT_EQ(cells.size(), sim_count + 2u * 3u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<int>(i));
    EXPECT_EQ(cells[i].backend,
              i < sim_count ? exec::Backend::kSim : exec::Backend::kHw);
    if (i >= sim_count) {
      EXPECT_EQ(cells[i].adversary, spec.adversaries.front());
    }
  }
  // The sim half of the grid is exactly the sim-only expansion: adding a
  // backend appends cells without renumbering (or reseeding) existing ones.
  CampaignSpec sim_only = small_spec();
  const std::vector<CellSpec> sim_cells = expand(sim_only);
  for (std::size_t i = 0; i < sim_cells.size(); ++i) {
    EXPECT_EQ(cells[i].algorithm, sim_cells[i].algorithm);
    EXPECT_EQ(cells[i].adversary, sim_cells[i].adversary);
    EXPECT_EQ(cells[i].k, sim_cells[i].k);
    EXPECT_EQ(cells[i].seed0, sim_cells[i].seed0);
  }
}

TEST(CampaignSpec, ValidateChecksBackendCapability) {
  CampaignSpec spec = small_spec();
  spec.algorithms = {algo::AlgorithmId::kNativeAtomic};
  EXPECT_NE(validate(spec), "");  // native baseline has no sim backend

  spec.backends = {exec::Backend::kHw};
  spec.ks = {2};
  EXPECT_EQ(validate(spec), "");

  spec.backends = {};
  EXPECT_NE(validate(spec), "");
}

TEST(CampaignSpec, SpecHashIsStableAndSensitive) {
  const CampaignSpec spec = small_spec();
  EXPECT_EQ(spec_hash(spec), spec_hash(spec));

  CampaignSpec reseeded = spec;
  reseeded.seed = spec.seed + 1;
  EXPECT_NE(spec_hash(reseeded), spec_hash(spec));

  CampaignSpec rebackended = spec;
  rebackended.backends = {exec::Backend::kHw};
  EXPECT_NE(spec_hash(rebackended), spec_hash(spec));
}

TEST(CampaignReporter, SimOnlyCampaignsKeepTheHistoricalSchema) {
  // Campaigns a PR-1 binary could express must render the exact historical
  // byte layout: no backend / crash fields anywhere.
  CampaignSpec spec = small_spec();
  spec.ks = {2};
  spec.trials = 2;
  EXPECT_FALSE(extended_schema(spec));
  const CampaignResult result = run_campaign(spec);
  for (const ReportFormat format :
       {ReportFormat::kJsonl, ReportFormat::kCsv, ReportFormat::kTable}) {
    const std::string text = render_to_string(result, format);
    EXPECT_EQ(text.find("backend"), std::string::npos);
    EXPECT_EQ(text.find("crashed"), std::string::npos);
  }
}

TEST(CampaignReporter, CrashAdversaryOptsIntoTheExtendedSchema) {
  CampaignSpec spec;
  spec.name = "crash-test";
  spec.algorithms = {algo::AlgorithmId::kTournament};
  spec.adversaries = {algo::AdversaryId::kCrashAfterOps};
  spec.ks = {8};
  spec.trials = 20;
  spec.seed = 5;
  EXPECT_TRUE(extended_schema(spec));
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_GT(result.cells[0].agg.crashed_runs, 0);
  EXPECT_EQ(result.cells[0].agg.violation_runs, 0);
  const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"backend\":\"sim\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"crashed_runs\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"unfinished\":{"), std::string::npos);
  const std::string csv = render_to_string(result, ReportFormat::kCsv);
  EXPECT_NE(csv.find("backend,"), std::string::npos);
  EXPECT_NE(csv.find("crashed_runs"), std::string::npos);
}

TEST(CampaignExecutor, HwBackendRunsThroughTheSamePipeline) {
  CampaignSpec spec;
  spec.name = "hw-test";
  spec.backends = {exec::Backend::kHw};
  spec.algorithms = {algo::AlgorithmId::kTournament,
                     algo::AlgorithmId::kNativeAtomic};
  spec.adversaries = {algo::AdversaryId::kUniformRandom};
  spec.ks = {2};
  spec.trials = 3;
  ExecutorOptions options;
  options.workers = 2;
  const CampaignResult result = run_campaign(spec, options);
  ASSERT_EQ(result.cells.size(), 2u);
  for (const CellResult& cell : result.cells) {
    EXPECT_EQ(cell.cell.backend, exec::Backend::kHw);
    EXPECT_EQ(cell.trials_run, 3);
    EXPECT_EQ(cell.agg.violation_runs, 0);
    EXPECT_EQ(cell.error_runs, 0);
    EXPECT_GT(cell.declared_registers, 0u);
    EXPECT_GT(cell.agg.max_steps.mean(), 0.0);
  }
  EXPECT_EQ(result.sim_steps, 0u);
  EXPECT_GT(result.hw_steps, 0u);
  const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"backend\":\"hw\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"wall_seconds\":{"), std::string::npos);
}

TEST(CampaignExecutor, MixedBackendCampaignKeepsSimCellsDeterministic) {
  CampaignSpec spec;
  spec.name = "mixed";
  spec.backends = {exec::Backend::kSim, exec::Backend::kHw};
  spec.algorithms = {algo::AlgorithmId::kLogStarChain};
  spec.adversaries = {algo::AdversaryId::kUniformRandom};
  spec.ks = {2};
  spec.trials = 4;
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].cell.backend, exec::Backend::kSim);
  EXPECT_EQ(result.cells[1].cell.backend, exec::Backend::kHw);
  // The sim cell must match the serial harness exactly, hw alongside or not.
  const sim::LeAggregate expected = sim::run_le_many(
      algo::sim_builder(algo::AlgorithmId::kLogStarChain), 2, 2,
      algo::adversary_factory(algo::AdversaryId::kUniformRandom), 4,
      spec.seed);
  EXPECT_EQ(result.cells[0].agg.max_steps.mean(), expected.max_steps.mean());
  EXPECT_EQ(result.cells[0].agg.total_steps.mean(),
            expected.total_steps.mean());
}

TEST(CampaignReporter, BenchJsonCarriesSpecHashAndCells) {
  CampaignSpec spec = small_spec();
  spec.ks = {2};
  spec.trials = 2;
  const CampaignResult result = run_campaign(spec);
  char* buffer = nullptr;
  std::size_t size = 0;
  std::FILE* mem = open_memstream(&buffer, &size);
  ASSERT_NE(mem, nullptr);
  report_bench_json(result, mem);
  std::fclose(mem);
  std::string text(buffer, size);
  std::free(buffer);

  char expected_hash[32];
  std::snprintf(expected_hash, sizeof expected_hash, "%016llx",
                static_cast<unsigned long long>(spec_hash(spec)));
  EXPECT_NE(text.find("\"schema\":\"rts-bench-1\""), std::string::npos);
  EXPECT_NE(text.find(std::string("\"spec_hash\":\"") + expected_hash),
            std::string::npos);
  EXPECT_NE(text.find("\"wall_seconds\":"), std::string::npos);
  // One cell object per grid cell.
  std::size_t cells = 0;
  for (std::size_t at = text.find("{\"backend\":"); at != std::string::npos;
       at = text.find("{\"backend\":", at + 1)) {
    ++cells;
  }
  EXPECT_EQ(cells, result.cells.size());
}

TEST(CampaignPresets, NewPresetsAreRegistered) {
  const Preset* crash = find_preset("crash");
  ASSERT_NE(crash, nullptr);
  EXPECT_EQ(crash->spec.adversaries.size(), 1u);
  EXPECT_EQ(crash->spec.adversaries[0], algo::AdversaryId::kCrashAfterOps);

  const Preset* hw_smoke = find_preset("hw-smoke");
  ASSERT_NE(hw_smoke, nullptr);
  ASSERT_EQ(hw_smoke->spec.backends.size(), 1u);
  EXPECT_EQ(hw_smoke->spec.backends[0], exec::Backend::kHw);
  bool has_native = false;
  for (const algo::AlgorithmId id : hw_smoke->spec.algorithms) {
    if (id == algo::AlgorithmId::kNativeAtomic) has_native = true;
  }
  EXPECT_TRUE(has_native);
}

TEST(CampaignPresets, FrozenPresetsStaySimOnlyAndCrashFree) {
  // The PR-1 tables must keep rendering the historical schema; only the
  // later presets (crash injection, hw backends, the crash-bearing
  // conformance corpus) opt into the extended one.
  for (const Preset& preset : all_presets()) {
    const bool is_new = std::string_view(preset.name) == "crash" ||
                        std::string_view(preset.name) == "hw-smoke" ||
                        std::string_view(preset.name) == "conformance";
    EXPECT_EQ(extended_schema(preset.spec), is_new) << preset.name;
  }
}

}  // namespace
}  // namespace rts::campaign
