// Tests for the campaign subsystem: grid expansion, preset registry
// integrity, executor correctness (bitwise equal to the serial harness) and
// scheduling-independence (identical reporter bytes for 1, 2, and 8
// workers), and time-budget truncation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "campaign/cli.hpp"
#include "campaign/executor.hpp"
#include "campaign/presets.hpp"
#include "campaign/reporter.hpp"
#include "campaign/spec.hpp"

namespace rts::campaign {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "test";
  spec.algorithms = {algo::AlgorithmId::kLogStarChain,
                     algo::AlgorithmId::kRatRacePath};
  spec.adversaries = {algo::AdversaryId::kUniformRandom,
                      algo::AdversaryId::kRoundRobin};
  spec.ks = {2, 5, 8};
  spec.trials = 9;
  spec.seed = 77;
  return spec;
}

TEST(CampaignSpec, ExpandIsTheFullGridInDeterministicOrder) {
  const CampaignSpec spec = small_spec();
  const std::vector<CellSpec> cells = expand(spec);
  ASSERT_EQ(cells.size(), 2u * 2u * 3u);
  // Algorithms outermost, then adversaries, then the k sweep.
  EXPECT_EQ(cells[0].algorithm, algo::AlgorithmId::kLogStarChain);
  EXPECT_EQ(cells[0].adversary, algo::AdversaryId::kUniformRandom);
  EXPECT_EQ(cells[0].k, 2);
  EXPECT_EQ(cells[1].k, 5);
  EXPECT_EQ(cells[3].adversary, algo::AdversaryId::kRoundRobin);
  EXPECT_EQ(cells[6].algorithm, algo::AlgorithmId::kRatRacePath);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<int>(i));
    EXPECT_EQ(cells[i].n, cells[i].k);  // fixed_n = 0 => n = k
    EXPECT_EQ(cells[i].trials, spec.trials);
    EXPECT_EQ(cells[i].seed0, spec.seed);  // kSharedBase
  }
}

TEST(CampaignSpec, PerCellSeedPolicyGivesDistinctStreams) {
  CampaignSpec spec = small_spec();
  spec.seed_policy = SeedPolicy::kPerCell;
  const std::vector<CellSpec> cells = expand(spec);
  std::set<std::uint64_t> seeds;
  for (const CellSpec& cell : cells) seeds.insert(cell.seed0);
  EXPECT_EQ(seeds.size(), cells.size());
}

TEST(CampaignSpec, FixedNOverridesCapacity) {
  CampaignSpec spec = small_spec();
  spec.fixed_n = 64;
  for (const CellSpec& cell : expand(spec)) EXPECT_EQ(cell.n, 64);
}

TEST(CampaignSpec, ValidateCatchesNonsense) {
  EXPECT_TRUE(validate(small_spec()).empty());

  CampaignSpec no_algos = small_spec();
  no_algos.algorithms.clear();
  EXPECT_FALSE(validate(no_algos).empty());

  CampaignSpec bad_k = small_spec();
  bad_k.ks = {0};
  EXPECT_FALSE(validate(bad_k).empty());

  CampaignSpec k_over_n = small_spec();
  k_over_n.fixed_n = 4;  // ks include 5 and 8
  EXPECT_FALSE(validate(k_over_n).empty());
}

TEST(CampaignExecutor, MatchesSerialRunLeManyBitwise) {
  CampaignSpec spec = small_spec();
  ExecutorOptions options;
  options.workers = 3;
  const CampaignResult result = run_campaign(spec, options);
  ASSERT_EQ(result.cells.size(), expand(spec).size());

  for (const CellResult& cell : result.cells) {
    const sim::LeAggregate expected = sim::run_le_many(
        algo::sim_builder(cell.cell.algorithm), cell.cell.n, cell.cell.k,
        algo::adversary_factory(cell.cell.adversary), cell.cell.trials,
        cell.cell.seed0);
    EXPECT_EQ(cell.trials_run, spec.trials);
    EXPECT_EQ(cell.agg.runs, expected.runs);
    EXPECT_EQ(cell.agg.violation_runs, expected.violation_runs);
    // Bitwise: the executor folds the same per-trial values in the same
    // order as the serial loop.
    EXPECT_EQ(cell.agg.max_steps.mean(), expected.max_steps.mean());
    EXPECT_EQ(cell.agg.max_steps.max(), expected.max_steps.max());
    EXPECT_EQ(cell.agg.mean_steps.mean(), expected.mean_steps.mean());
    EXPECT_EQ(cell.agg.total_steps.mean(), expected.total_steps.mean());
    EXPECT_EQ(cell.agg.regs_touched.mean(), expected.regs_touched.mean());
    EXPECT_GT(cell.declared_registers, 0u);
  }
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.sim_steps, 0u);
}

TEST(CampaignExecutor, ReportBytesIdenticalForAnyWorkerCount) {
  const CampaignSpec spec = small_spec();
  std::string reference_jsonl;
  std::string reference_csv;
  for (const int workers : {1, 2, 8}) {
    ExecutorOptions options;
    options.workers = workers;
    const CampaignResult result = run_campaign(spec, options);
    const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
    const std::string csv = render_to_string(result, ReportFormat::kCsv);
    const std::string table = render_to_string(result, ReportFormat::kTable);
    EXPECT_FALSE(jsonl.empty());
    EXPECT_NE(table.find("logstar"), std::string::npos);
    if (reference_jsonl.empty()) {
      reference_jsonl = jsonl;
      reference_csv = csv;
    } else {
      EXPECT_EQ(jsonl, reference_jsonl) << "workers=" << workers;
      EXPECT_EQ(csv, reference_csv) << "workers=" << workers;
    }
  }
}

TEST(CampaignExecutor, OversubscribedWorkersStillCoverEveryTrial) {
  CampaignSpec spec = small_spec();
  spec.ks = {2};
  spec.trials = 3;  // 4 cells x 3 trials = 12 trials, 16 workers
  ExecutorOptions options;
  options.workers = 16;
  const CampaignResult result = run_campaign(spec, options);
  for (const CellResult& cell : result.cells) {
    EXPECT_EQ(cell.trials_run, 3);
  }
  EXPECT_FALSE(result.truncated);
}

TEST(CampaignExecutor, TimeBudgetTruncatesAndFlags) {
  CampaignSpec spec = small_spec();
  ExecutorOptions options;
  options.workers = 2;
  options.time_budget_seconds = 1e-9;  // expires before any claim
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_TRUE(result.truncated);
  std::uint64_t run = 0;
  for (const CellResult& cell : result.cells) {
    run += static_cast<std::uint64_t>(cell.trials_run);
  }
  EXPECT_EQ(run, 0u);
  // Truncation must be visible in machine output.
  const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"truncated\":true"), std::string::npos);
}

TEST(CampaignExecutor, ProgressCallbackFires) {
  CampaignSpec spec = small_spec();
  spec.ks = {2};
  int calls = 0;
  Progress last;
  ExecutorOptions options;
  options.workers = 2;
  options.progress_interval_seconds = 0.0001;
  options.on_progress = [&](const Progress& progress) {
    ++calls;
    last = progress;
  };
  run_campaign(spec, options);
  EXPECT_GE(calls, 1);
  EXPECT_EQ(last.trials_done, last.trials_total);
  EXPECT_EQ(last.trials_total, 36u);  // 2 algos x 2 advs x 1 k x 9 trials
}

TEST(CampaignPresets, RegistryIsWellFormed) {
  std::set<std::string> names;
  for (const Preset& preset : all_presets()) {
    EXPECT_TRUE(names.insert(preset.name).second)
        << "duplicate preset " << preset.name;
    EXPECT_EQ(validate(preset.spec), "") << preset.name;
    EXPECT_EQ(preset.spec.name, preset.name);
    EXPECT_NE(find_preset(preset.name), nullptr);
  }
  EXPECT_EQ(find_preset("no-such-preset"), nullptr);
}

TEST(CampaignPresets, RatracePresetFreezesTheHistoricalTableParameters) {
  // `rts_bench --preset ratrace` must regenerate the bench_ratrace step
  // table: same algorithms, sweep, trial count, and seed stream.
  const Preset* preset = find_preset("ratrace");
  ASSERT_NE(preset, nullptr);
  EXPECT_EQ(preset->spec.seed, 21u);
  EXPECT_EQ(preset->spec.trials, 100);
  EXPECT_EQ(preset->spec.seed_policy, SeedPolicy::kSharedBase);
  ASSERT_EQ(preset->spec.algorithms.size(), 2u);
  EXPECT_EQ(preset->spec.algorithms[0], algo::AlgorithmId::kRatRace);
  EXPECT_EQ(preset->spec.algorithms[1], algo::AlgorithmId::kRatRacePath);
  EXPECT_EQ(preset->spec.ks, standard_contention_sweep());
}

TEST(CampaignReporter, FormatsParseAndRender) {
  EXPECT_EQ(parse_format("table"), ReportFormat::kTable);
  EXPECT_EQ(parse_format("jsonl"), ReportFormat::kJsonl);
  EXPECT_EQ(parse_format("json"), ReportFormat::kJsonl);
  EXPECT_EQ(parse_format("csv"), ReportFormat::kCsv);
  EXPECT_EQ(parse_format("xml"), std::nullopt);

  CampaignSpec spec = small_spec();
  spec.ks = {2};
  spec.trials = 2;
  const CampaignResult result = run_campaign(spec);
  const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"type\":\"campaign\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"cell\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"algorithm\":\"ratrace-path\""), std::string::npos);
  const std::string csv = render_to_string(result, ReportFormat::kCsv);
  EXPECT_NE(csv.find("campaign,algorithm,adversary"), std::string::npos);
  // Header + one row per cell.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<long>(1 + result.cells.size()));
}

TEST(CampaignExecutor, TinyStepLimitShowsUpAsIncompleteRuns) {
  CampaignSpec spec = small_spec();
  spec.algorithms = {algo::AlgorithmId::kRatRacePath};
  spec.adversaries = {algo::AdversaryId::kUniformRandom};
  spec.ks = {8};
  spec.trials = 4;
  spec.step_limit = 5;  // far below any real election
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].incomplete_runs, 4);
  EXPECT_EQ(result.cells[0].error_runs, 0);
  EXPECT_EQ(result.cells[0].trials_run, 4);
  const std::string jsonl = render_to_string(result, ReportFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"incomplete_runs\":4"), std::string::npos);
}

TEST(CampaignExecutor, AdversaryGridActuallyChangesSchedules) {
  // Same algorithm and seed under different schedulers must (generically)
  // give different step counts -- guards against the adversary dimension
  // being silently ignored.
  CampaignSpec spec = small_spec();
  spec.algorithms = {algo::AlgorithmId::kRatRacePath};
  spec.ks = {8};
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_NE(result.cells[0].agg.total_steps.mean(),
            result.cells[1].agg.total_steps.mean());
}

}  // namespace
}  // namespace rts::campaign
