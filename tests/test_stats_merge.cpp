// Unit tests for Accumulator::merge, the operation the parallel campaign
// executor leans on.  The guarantees pinned down here:
//  * count/min/max and retained-sample quantiles are EXACTLY independent of
//    merge order (sets, not sequences);
//  * mean/m2 merging is EXACTLY commutative (symmetric formulas), and
//    any reassociation agrees to ~1 ulp.
// (The executor does not even need the ulp caveat: it folds per-trial
// summaries in trial order on one thread, so its aggregates are bitwise
// reproducible by construction -- see test_campaign.cpp.)
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace rts::support {
namespace {

Accumulator from(const std::vector<double>& xs) {
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  return acc;
}

TEST(StatsMerge, MergeEmptySides) {
  Accumulator empty;
  Accumulator some = from({1.0, 2.0, 3.0});

  Accumulator a = some;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.mean(), some.mean());
  EXPECT_EQ(a.quantile(0.5), 2.0);

  Accumulator b;
  b.merge(some);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_EQ(b.mean(), some.mean());
  EXPECT_EQ(b.max(), 3.0);
  EXPECT_EQ(b.quantile(1.0), 3.0);
}

TEST(StatsMerge, MergeMatchesSerialAccumulation) {
  // Integer step counts, the executor's actual payload.
  const std::vector<double> left = {3, 7, 7, 12, 1};
  const std::vector<double> right = {5, 5, 9, 2};
  std::vector<double> all = left;
  all.insert(all.end(), right.begin(), right.end());

  Accumulator merged = from(left);
  merged.merge(from(right));
  const Accumulator serial = from(all);

  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_EQ(merged.min(), serial.min());
  EXPECT_EQ(merged.max(), serial.max());
  EXPECT_NEAR(merged.mean(), serial.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), serial.variance(), 1e-9);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    EXPECT_EQ(merged.quantile(q), serial.quantile(q)) << "q=" << q;
  }
}

TEST(StatsMerge, MergeIsExactlyCommutative) {
  // Arbitrary (non-dyadic) values: A+B and B+A must still agree bitwise,
  // because the combined mean/m2 are computed from operand-symmetric
  // expressions.
  PrngSource rng(99);
  std::vector<double> xs, ys;
  for (int i = 0; i < 37; ++i) xs.push_back(std::ldexp(rng.draw(1000), -3) / 7.0);
  for (int i = 0; i < 11; ++i) ys.push_back(std::ldexp(rng.draw(1000), -2) / 3.0);

  Accumulator ab = from(xs);
  ab.merge(from(ys));
  Accumulator ba = from(ys);
  ba.merge(from(xs));

  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.mean(), ba.mean());      // bitwise
  EXPECT_EQ(ab.variance(), ba.variance());
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());
  for (const double q : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(ab.quantile(q), ba.quantile(q));
  }
}

TEST(StatsMerge, MergeOrderIndependentSummaries) {
  // Folding three worker-shard accumulators into one in every possible
  // order: count/min/max and quantiles must agree bitwise (they are
  // set-functions of the sample multiset); mean/stddev may differ by FP
  // rounding only in the last ulp.
  PrngSource rng(7);
  std::vector<std::vector<double>> chunks;
  for (const int size : {4, 8, 5}) {
    std::vector<double> chunk;
    for (int i = 0; i < size; ++i) {
      chunk.push_back(static_cast<double>(rng.draw(64)));
    }
    chunks.push_back(chunk);
  }

  const auto merge_in_order = [&](std::vector<int> order) {
    Accumulator acc = from(chunks[static_cast<std::size_t>(order[0])]);
    for (std::size_t i = 1; i < order.size(); ++i) {
      acc.merge(from(chunks[static_cast<std::size_t>(order[i])]));
    }
    return summarize(acc);
  };

  const Summary reference = merge_in_order({0, 1, 2});
  for (const std::vector<int>& order :
       {std::vector<int>{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1},
        {2, 1, 0}}) {
    const Summary summary = merge_in_order(order);
    EXPECT_EQ(summary.n, reference.n);
    EXPECT_EQ(summary.min, reference.min);  // bitwise: set-functions
    EXPECT_EQ(summary.max, reference.max);
    EXPECT_EQ(summary.p50, reference.p50);
    EXPECT_EQ(summary.p95, reference.p95);
    EXPECT_NEAR(summary.mean, reference.mean, 1e-12);
    EXPECT_NEAR(summary.stddev, reference.stddev, 1e-12);
  }
}

TEST(StatsMerge, MergeTreeShapeAgreesToOneUlp) {
  // Non-dyadic regime: reassociating the merge tree may round differently,
  // but only in the last ulp -- pinned here so a real drift would fail.
  std::vector<std::vector<double>> chunks = {
      {1.1, 2.2, 3.3}, {4.4, 5.5}, {6.6, 7.7, 8.8, 9.9}};
  Accumulator left = from(chunks[0]);
  left.merge(from(chunks[1]));
  left.merge(from(chunks[2]));

  Accumulator right_tail = from(chunks[1]);
  right_tail.merge(from(chunks[2]));
  Accumulator right = from(chunks[0]);
  right.merge(right_tail);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_NEAR(left.mean(), right.mean(), 1e-14);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-12);
  EXPECT_EQ(left.quantile(0.5), right.quantile(0.5));  // still exact
}

TEST(StatsMerge, RetentionDropsWhenEitherSideDoesNotKeep) {
  Accumulator keeping(true);
  keeping.add(1.0);
  Accumulator streaming(false);
  streaming.add(2.0);
  keeping.merge(streaming);
  EXPECT_FALSE(keeping.keeps_samples());
  EXPECT_EQ(keeping.count(), 2u);
  EXPECT_NEAR(keeping.mean(), 1.5, 1e-15);

  Accumulator fresh(false);
  Accumulator kept(true);
  kept.add(3.0);
  fresh.merge(kept);
  EXPECT_FALSE(fresh.keeps_samples());
  EXPECT_EQ(fresh.count(), 1u);
}

}  // namespace
}  // namespace rts::support
