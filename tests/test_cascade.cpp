// Tests for the Theorem-2.4 sifting cascade: level sizing, correctness
// sweeps, the final 2-process funnel, and adaptivity in k (the property the
// cascade exists for: small contention resolves in the small levels).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "algo/cascade.hpp"
#include "algo/sim_platform.hpp"
#include "sim/runner.hpp"
#include "sim_harness.hpp"

namespace rts::algo {
namespace {

using rts::testing::SchedKind;
using rts::testing::SimHarness;
using P = SimPlatform;

sim::LeBuilder cascade_builder() {
  return [](sim::Kernel& kernel, int n) -> sim::BuiltLe {
    SimPlatform::Arena arena(kernel.memory());
    auto le = std::make_shared<SiftCascadeLe<P>>(arena, n);
    sim::BuiltLe built;
    built.keepalive = le;
    built.declared_registers = le->declared_registers();
    built.elect = [le](sim::Context& ctx) { return le->elect(ctx); };
    return built;
  };
}

TEST(Cascade, LevelCountGrowsTripleLogarithmically) {
  SimHarness h1;
  SiftCascadeLe<P> tiny(h1.arena(), 4);
  EXPECT_EQ(tiny.num_levels(), 1);

  SimHarness h2;
  SiftCascadeLe<P> small(h2.arena(), 64);
  EXPECT_GE(small.num_levels(), 2);
  EXPECT_LE(small.num_levels(), 4);

  SimHarness h3;
  SiftCascadeLe<P> big(h3.arena(), 4096);
  EXPECT_LE(big.num_levels(), 4) << "log log log n is at most 4 here";
}

TEST(Cascade, SpaceIsLinear) {
  for (const int n : {64, 256, 1024}) {
    SimHarness harness;
    SiftCascadeLe<P> cascade(harness.arena(), n);
    EXPECT_LE(cascade.declared_registers(), static_cast<std::size_t>(8 * n))
        << "n=" << n;
  }
}

class CascadeSweep
    : public ::testing::TestWithParam<std::tuple<int, SchedKind>> {};

TEST_P(CascadeSweep, ExactlyOneWinner) {
  const auto [k, sched] = GetParam();
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto adversary = rts::testing::make_adversary(sched, seed);
    const auto r =
        sim::run_le_once(cascade_builder(), k, k, *adversary, seed);
    EXPECT_TRUE(r.violations.empty())
        << r.violations.front() << " seed=" << seed;
    EXPECT_EQ(r.winners, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Contention, CascadeSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 9, 20, 64, 150),
                       ::testing::Values(SchedKind::kSequential,
                                         SchedKind::kRoundRobin,
                                         SchedKind::kRandom)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_" +
             rts::testing::to_string(std::get<1>(info.param));
    });

TEST(Cascade, AdaptiveInContention) {
  // Theorem 2.4's point: with the object sized for n = 4096 but contention
  // only k, low-contention runs must resolve in the early (tiny) levels --
  // their step counts stay near the k-sized object's, not the n-sized one's.
  constexpr int n = 4096;
  const auto measure = [&](int k) {
    const auto agg = sim::run_le_many(
        cascade_builder(), n, k,
        rts::testing::adversary_factory(SchedKind::kRandom), 30, 17);
    EXPECT_EQ(agg.violation_runs, 0);
    return agg.max_steps.mean();
  };
  const double at_2 = measure(2);
  const double at_64 = measure(64);
  EXPECT_LT(at_2, 25.0) << "two processes must resolve in the 4-sized level";
  EXPECT_LT(at_64, at_2 * 12.0);
}

TEST(Cascade, CrashSafety) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    sim::RoundRobinAdversary inner;
    sim::CrashInjectingAdversary adversary(inner, seed, 0.03, 3);
    const auto r = sim::run_le_once(cascade_builder(), 32, 32, adversary, seed);
    EXPECT_LE(r.winners, 1) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rts::algo
