// Tests for decision-tape serialization and single-run replay: a violating
// tape found by explore_all must reproduce the identical violation when
// replayed (after a serialization round trip), and the memory usage
// breakdown must attribute registers to the components that allocated them.
#include <gtest/gtest.h>

#include <memory>

#include "algo/chain.hpp"
#include "algo/sim_platform.hpp"
#include "sim/model_check.hpp"
#include "sim_harness.hpp"

namespace rts::sim {
namespace {

// The lost-update scenario from test_model_check: known to have violating
// interleavings, ideal for replay testing.
void lost_update_build(Kernel& kernel, support::RandomSource& coins) {
  const RegId reg = kernel.memory().alloc("counter");
  for (int p = 0; p < 2; ++p) {
    kernel.add_process(
        [reg](Context& ctx) {
          const auto v = ctx.read(reg);
          ctx.write(reg, v + 1);
        },
        std::make_unique<SharedSource>(coins));
  }
}

std::string lost_update_terminal(const Kernel& kernel) {
  if (kernel.memory().slot(0).value != 2) return "lost update";
  return "";
}

std::string no_check(const Kernel&) { return ""; }

TEST(Replay, ViolatingTapeReproducesViolation) {
  const ExploreResult explored =
      explore_all(lost_update_build, no_check, lost_update_terminal);
  ASSERT_TRUE(explored.violation_found);

  const ReplayResult replayed =
      replay_tape(lost_update_build, no_check, lost_update_terminal,
                  ExploreOptions{}, explored.violating_tape);
  EXPECT_TRUE(replayed.completed);
  EXPECT_EQ(replayed.violation, "lost update");
}

TEST(Replay, SerializationRoundTrip) {
  const ExploreResult explored =
      explore_all(lost_update_build, no_check, lost_update_terminal);
  ASSERT_TRUE(explored.violation_found);

  const std::string text = format_tape(explored.violating_tape);
  EXPECT_FALSE(text.empty());
  const auto parsed = parse_tape(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), explored.violating_tape.size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    EXPECT_EQ((*parsed)[i].value, explored.violating_tape[i].value);
    EXPECT_EQ((*parsed)[i].arity, explored.violating_tape[i].arity);
  }

  const ReplayResult replayed = replay_tape(
      lost_update_build, no_check, lost_update_terminal, ExploreOptions{},
      *parsed);
  EXPECT_EQ(replayed.violation, "lost update");
}

TEST(Replay, NonViolatingTapeIsClean) {
  // The all-zeros tape (first DFS path) is sequential: process 0 runs to
  // completion first, so both increments land and there is no violation.
  const ReplayResult replayed = replay_tape(
      lost_update_build, no_check, lost_update_terminal, ExploreOptions{}, {});
  EXPECT_TRUE(replayed.completed);
  EXPECT_TRUE(replayed.violation.empty());
}

TEST(Replay, ParseRejectsMalformedInput) {
  EXPECT_FALSE(parse_tape("1-2").has_value());
  EXPECT_FALSE(parse_tape("abc/2").has_value());
  EXPECT_FALSE(parse_tape("3/2").has_value()) << "value must be < arity";
  EXPECT_FALSE(parse_tape("1/0").has_value()) << "arity must be positive";
  const auto empty = parse_tape("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
  const auto good = parse_tape("0/2 1/3");
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->size(), 2u);
}

TEST(MemoryUsage, BreakdownByComponentPrefix) {
  rts::testing::SimHarness harness;
  algo::GeChainLe<algo::SimPlatform> chain(
      harness.arena(), 8, algo::fig1_truncated_factory<algo::SimPlatform>(8, 3));
  sim::Outcome out = sim::Outcome::kUnknown;
  harness.add([&](Context& ctx) { out = chain.elect(ctx); }, 1);
  SequentialAdversary seq;
  ASSERT_TRUE(harness.run(seq));

  const auto usage = harness.kernel().memory().usage_by_prefix();
  ASSERT_FALSE(usage.empty());
  std::size_t total = 0;
  bool saw_ge = false;
  bool saw_splitter = false;
  bool saw_le2 = false;
  for (const auto& row : usage) {
    total += row.registers;
    if (row.prefix == "ge") saw_ge = true;
    if (row.prefix == "splitter") saw_splitter = true;
    if (row.prefix == "le2") saw_le2 = true;
  }
  EXPECT_EQ(total, harness.kernel().memory().allocated());
  EXPECT_TRUE(saw_ge);
  EXPECT_TRUE(saw_splitter);
  EXPECT_TRUE(saw_le2);
  // Sorted descending by register count.
  for (std::size_t i = 1; i < usage.size(); ++i) {
    EXPECT_GE(usage[i - 1].registers, usage[i].registers);
  }
}

}  // namespace
}  // namespace rts::sim
