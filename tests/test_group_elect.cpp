// Tests for the group-election objects: the Figure-1 construction
// (Lemma 2.2), the Alistarh-Aspnes sifting step, and the dummy.
//
// Key statistical check: the Fig-1 performance parameter f(k) -- the
// expected number of elected processes -- must respect 2*log2(k) + 6 for
// every schedule we throw at it, and the sift must respect p*k + 1/p + 1.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "algo/chain.hpp"
#include "algo/group_elect.hpp"
#include "algo/sim_platform.hpp"
#include "sim_harness.hpp"
#include "support/math.hpp"
#include "support/stats.hpp"

namespace rts::algo {
namespace {

using rts::testing::SimHarness;
using rts::testing::SchedKind;
using P = SimPlatform;

template <class MakeGe>
int run_group_election(int k, SchedKind sched, std::uint64_t seed,
                       const MakeGe& make_ge, std::uint64_t* steps_max = nullptr) {
  SimHarness harness;
  auto ge = make_ge(harness);
  std::vector<std::uint8_t> elected(static_cast<std::size_t>(k), 0);
  for (int p = 0; p < k; ++p) {
    harness.add(
        [ge, &elected, p](sim::Context& ctx) {
          elected[static_cast<std::size_t>(p)] = ge->elect(ctx) ? 1 : 0;
        },
        support::derive_seed(seed, static_cast<std::uint64_t>(p)));
  }
  auto adversary = rts::testing::make_adversary(sched, seed);
  EXPECT_TRUE(harness.run(*adversary));
  if (steps_max != nullptr) {
    *steps_max = 0;
    for (int p = 0; p < k; ++p) {
      *steps_max = std::max(*steps_max, harness.kernel().steps(p));
    }
  }
  int count = 0;
  for (const auto e : elected) count += e;
  return count;
}

class Fig1Sweep
    : public ::testing::TestWithParam<std::tuple<int, SchedKind>> {};

TEST_P(Fig1Sweep, AtLeastOneElectedAndConstantSteps) {
  const auto [k, sched] = GetParam();
  const auto make = [k = k](SimHarness& h) {
    return std::make_shared<Fig1GroupElect<P>>(h.arena(), k);
  };
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    std::uint64_t steps_max = 0;
    const int elected = run_group_election(k, sched, seed, make, &steps_max);
    EXPECT_GE(elected, 1) << "at least one process must be elected";
    EXPECT_LE(elected, k);
    EXPECT_LE(steps_max, 4u) << "Fig-1 elect() is at most 4 shared steps";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Contention, Fig1Sweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 6, 16, 64, 256),
                       ::testing::Values(SchedKind::kSequential,
                                         SchedKind::kRoundRobin,
                                         SchedKind::kRandom)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_" +
             rts::testing::to_string(std::get<1>(info.param));
    });

TEST(Fig1, PerformanceParameterWithinLemma22Bound) {
  // E[#elected] <= 2 log2 k + 6 against any location-oblivious adversary.
  // Round-robin and uniform-random schedules are both location-oblivious.
  for (const int k : {4, 16, 64, 256, 1024}) {
    const auto make = [k](SimHarness& h) {
      return std::make_shared<Fig1GroupElect<P>>(h.arena(), k);
    };
    for (const SchedKind sched : {SchedKind::kRoundRobin, SchedKind::kRandom}) {
      support::Accumulator elected;
      const int trials = 300;
      for (std::uint64_t seed = 0; seed < trials; ++seed) {
        elected.add(run_group_election(k, sched, seed, make));
      }
      const double bound = support::fig1_performance_bound(
          static_cast<std::uint64_t>(k));
      EXPECT_LT(elected.mean() - 3 * elected.ci95_half_width(), bound)
          << "k=" << k << " sched=" << rts::testing::to_string(sched);
      // And the bound is not vacuous: elections do grow with k.
      if (k >= 64) {
      EXPECT_GT(elected.mean(), 2.0);
    }
    }
  }
}

TEST(Fig1, SoloCallerIsElected) {
  const auto make = [](SimHarness& h) {
    return std::make_shared<Fig1GroupElect<P>>(h.arena(), 8);
  };
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    EXPECT_EQ(run_group_election(1, SchedKind::kSequential, seed, make), 1);
  }
}

TEST(Fig1, LateArriversSeeFlagAndLose) {
  // Sequential schedule: the first process writes the flag; every later
  // process reads flag = 1 in line 1 and is not elected.
  const auto make = [](SimHarness& h) {
    return std::make_shared<Fig1GroupElect<P>>(h.arena(), 16);
  };
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const int elected =
        run_group_election(8, SchedKind::kSequential, seed, make);
    EXPECT_EQ(elected, 1);
  }
}

TEST(Fig1, DeclaredRegistersMatchEllPlusTwo) {
  SimHarness harness;
  Fig1GroupElect<P> ge(harness.arena(), 256);
  EXPECT_EQ(ge.ell(), 8);
  EXPECT_EQ(ge.declared_registers(), 10u);
  EXPECT_EQ(harness.kernel().memory().allocated(), 10u);
}

// --- Sifting ---------------------------------------------------------------

class SiftSweep
    : public ::testing::TestWithParam<std::tuple<int, SchedKind>> {};

TEST_P(SiftSweep, AtLeastOneElectedSingleStep) {
  const auto [k, sched] = GetParam();
  const auto make = [](SimHarness& h) {
    return std::make_shared<SiftGroupElect<P>>(h.arena(), 0.25);
  };
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    std::uint64_t steps_max = 0;
    const int elected = run_group_election(k, sched, seed, make, &steps_max);
    EXPECT_GE(elected, 1);
    EXPECT_LE(steps_max, 1u) << "sifting is a single shared-memory op";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Contention, SiftSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 32, 128),
                       ::testing::Values(SchedKind::kSequential,
                                         SchedKind::kRoundRobin,
                                         SchedKind::kRandom)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_" +
             rts::testing::to_string(std::get<1>(info.param));
    });

TEST(Sift, ElectedCountRespectsPkPlusInverseP) {
  // E[elected] <= p*k + 1/p (+1 slack for the quantization of p).
  for (const int k : {16, 64, 256}) {
    for (const double p : {0.05, 0.125, 1.0 / std::sqrt(k)}) {
      const auto make = [p](SimHarness& h) {
        return std::make_shared<SiftGroupElect<P>>(h.arena(), p);
      };
      support::Accumulator elected;
      for (std::uint64_t seed = 0; seed < 400; ++seed) {
        elected.add(
            run_group_election(k, SchedKind::kRandom, seed, make));
      }
      const double bound = p * k + 1.0 / p + 1.0;
      EXPECT_LT(elected.mean() - 3 * elected.ci95_half_width(), bound)
          << "k=" << k << " p=" << p;
    }
  }
}

TEST(Sift, WriterFirstScheduleElectsOnlySubsequentWriters) {
  // If a writer goes first, every reader afterwards reads 1 and loses; the
  // elected set is exactly the writers.  With p = 1 everyone writes.
  const auto make = [](SimHarness& h) {
    return std::make_shared<SiftGroupElect<P>>(h.arena(), 1.0);
  };
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_EQ(run_group_election(16, SchedKind::kSequential, seed, make), 16);
  }
}

TEST(Sift, ScheduleLengthIsLogLog) {
  EXPECT_LE(sift_schedule(16).size(), 6u);
  EXPECT_LE(sift_schedule(1 << 20).size(), 10u);
  // Doubly-logarithmic growth: going from 2^10 to 2^20 adds at most 2 rounds.
  EXPECT_LE(sift_schedule(1 << 20).size(), sift_schedule(1 << 10).size() + 2);
  // Probabilities decrease then the final cleanup round is 1/2.
  const auto schedule = sift_schedule(4096);
  EXPECT_NEAR(schedule.front(), 1.0 / 64.0, 1e-9);
  EXPECT_DOUBLE_EQ(schedule.back(), 0.5);
}

// --- Dummy ------------------------------------------------------------------

TEST(DummyGe, ElectsEveryoneWithZeroSteps) {
  const auto make = [](SimHarness& h) {
    (void)h;
    return std::make_shared<DummyGroupElect<P>>();
  };
  std::uint64_t steps_max = 99;
  const int elected =
      run_group_election(12, SchedKind::kRoundRobin, 1, make, &steps_max);
  EXPECT_EQ(elected, 12);
  EXPECT_EQ(steps_max, 0u);
}

}  // namespace
}  // namespace rts::algo
