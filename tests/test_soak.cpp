// Tests for the sharded soak service (PR: multi-pool election service):
//
//  * ShardRouter: least-backlog selection, deterministic round-robin
//    tie-breaking, cursor continuity across picks,
//  * shard_pin_slice: round-robin CPU partition, ragged and empty cases,
//  * merge_shard_stats: merged histogram bytes and outcome totals are a
//    pure function of the sample multiset -- identical however the samples
//    are partitioned across 1/2/4 shards,
//  * the empty-latency contract: a run where nothing completed renders the
//    latency block as *absent* (jsonl) / "-" (table), never fabricated
//    zero percentiles,
//  * end-to-end sharded soak: every dispatched arrival lands in exactly
//    one outcome bucket and the merged view equals the per-shard fold,
//  * outcome-taxonomy totals identical across shard counts on a fixed,
//    sustainable schedule,
//  * checked CLI numeric parsing (the atoi-hardening bugfix),
//  * HwTrialPool deadline-watchdog shutdown ordering: repeated
//    construct/cancel/destruct stress (ASan/UBSan coverage) and the
//    stale-deadline re-arm regression.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "campaign/cli.hpp"
#include "campaign/soak.hpp"
#include "fault/plan.hpp"
#include "hw/harness.hpp"
#include "telemetry/histogram.hpp"

namespace rts::campaign {
namespace {

// ---------------------------------------------------------- ShardRouter --

TEST(ShardRouter, SingleShardAlwaysPicksZero) {
  ShardRouter router(1);
  const std::vector<std::uint64_t> backlogs{7};
  for (int i = 0; i < 5; ++i) EXPECT_EQ(router.pick(backlogs), 0u);
}

TEST(ShardRouter, TiesBreakRoundRobin) {
  ShardRouter router(3);
  const std::vector<std::uint64_t> tied{4, 4, 4};
  EXPECT_EQ(router.pick(tied), 0u);
  EXPECT_EQ(router.pick(tied), 1u);
  EXPECT_EQ(router.pick(tied), 2u);
  EXPECT_EQ(router.pick(tied), 0u);
}

TEST(ShardRouter, PicksStrictLeastBacklog) {
  ShardRouter router(3);
  EXPECT_EQ(router.pick({5, 2, 7}), 1u);
  EXPECT_EQ(router.pick({3, 3, 1}), 2u);
  EXPECT_EQ(router.pick({9, 0, 9}), 1u);
}

TEST(ShardRouter, CursorResumesPastTheLastPick) {
  ShardRouter router(3);
  // A forced pick of shard 1 leaves the cursor at 2, so the next all-tied
  // pick starts there instead of resetting to 0.
  EXPECT_EQ(router.pick({1, 0, 1}), 1u);
  const std::vector<std::uint64_t> tied{0, 0, 0};
  EXPECT_EQ(router.pick(tied), 2u);
  EXPECT_EQ(router.pick(tied), 0u);
  EXPECT_EQ(router.pick(tied), 1u);
}

// ------------------------------------------------------ shard_pin_slice --

TEST(ShardPinSlice, DealsCpusRoundRobin) {
  const std::vector<int> cpus{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(shard_pin_slice(cpus, 2, 0), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(shard_pin_slice(cpus, 2, 1), (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(shard_pin_slice(cpus, 1, 0), cpus);
}

TEST(ShardPinSlice, RaggedAndEmptyInputs) {
  EXPECT_TRUE(shard_pin_slice({}, 4, 2).empty());
  // Fewer CPUs than shards: the tail shards run unpinned.
  const std::vector<int> one{7};
  EXPECT_EQ(shard_pin_slice(one, 2, 0), (std::vector<int>{7}));
  EXPECT_TRUE(shard_pin_slice(one, 2, 1).empty());
}

// ----------------------------------------------------- merge invariance --

/// Deterministic pseudo-latencies (no clocks: the invariance being tested
/// is a property of the merge, not of any particular run).
std::vector<std::uint64_t> synthetic_samples(std::size_t count) {
  std::vector<std::uint64_t> samples;
  samples.reserve(count);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < count; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    samples.push_back((x >> 33) % 50'000'000);  // 0..50ms in ns
  }
  return samples;
}

SoakResult merged_over(const std::vector<std::uint64_t>& samples, int shards) {
  std::vector<ShardStats> stats(static_cast<std::size_t>(shards));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    ShardStats& shard = stats[i % static_cast<std::size_t>(shards)];
    ++shard.dispatched;
    ++shard.completed;
    shard.latency.record(samples[i]);
  }
  SoakResult result;
  merge_shard_stats(stats, &result);
  return result;
}

TEST(MergeShardStats, HistogramBytesInvariantAcrossShardCounts) {
  const std::vector<std::uint64_t> samples = synthetic_samples(5000);
  const SoakResult one = merged_over(samples, 1);
  for (const int shards : {2, 4}) {
    const SoakResult split = merged_over(samples, shards);
    EXPECT_EQ(split.completed, one.completed);
    EXPECT_EQ(split.latency.count(), one.latency.count());
    EXPECT_EQ(split.latency.min(), one.latency.min());
    EXPECT_EQ(split.latency.max(), one.latency.max());
    // The merge is an elementwise add, so every bucket -- not just the
    // published percentiles -- must match the single-shard fold exactly.
    for (std::size_t b = 0; b < telemetry::LatencyHistogram::kBucketCount;
         ++b) {
      ASSERT_EQ(split.latency.bucket_count_at(b), one.latency.bucket_count_at(b))
          << "bucket " << b << " diverged at " << shards << " shards";
    }
    EXPECT_EQ(split.latency.p50(), one.latency.p50());
    EXPECT_EQ(split.latency.p99(), one.latency.p99());
    EXPECT_EQ(split.latency.p999(), one.latency.p999());
  }
}

TEST(MergeShardStats, CounterSumsAreExact) {
  std::vector<ShardStats> stats(2);
  stats[0].completed = 3;
  stats[0].timed_out = 1;
  stats[0].retried = 4;
  stats[0].shed = 2;
  stats[0].violations = 1;
  stats[0].incomplete = 1;
  stats[0].faults.stalls = 5;
  stats[1].completed = 7;
  stats[1].timed_out = 2;
  stats[1].retried = 1;
  stats[1].shed = 3;
  stats[1].faults.no_shows = 2;
  SoakResult result;
  // Pre-poison the merged fields: merge must *replace*, not accumulate.
  result.completed = 99;
  result.latency.record(12345);
  merge_shard_stats(stats, &result);
  EXPECT_EQ(result.shards, 2);
  EXPECT_EQ(result.completed, 10u);
  EXPECT_EQ(result.timed_out, 3u);
  EXPECT_EQ(result.retried, 5u);
  EXPECT_EQ(result.shed, 5u);
  EXPECT_EQ(result.violations, 1u);
  EXPECT_EQ(result.incomplete, 1u);
  EXPECT_EQ(result.faults.stalls, 5u);
  EXPECT_EQ(result.faults.no_shows, 2u);
  EXPECT_TRUE(result.latency.empty());  // no shard recorded a sample
  EXPECT_EQ(result.shard_stats.size(), 2u);
}

// ------------------------------------------------ empty-latency contract --

TEST(LatencyContract, EmptyHistogramReportsZeroNeverFabricates) {
  // The histogram side of the unavailable-not-zero contract: empty is
  // detectable (empty()), and the nearest-rank percentile of an empty
  // multiset is a documented 0 sentinel the reporters must gate on.
  telemetry::LatencyHistogram empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.percentile(0.99), 0u);
  EXPECT_EQ(empty.min(), 0u);
  EXPECT_EQ(empty.max(), 0u);
}

/// An all-shed run: 10 arrivals planned, every one dropped on the gate.
SoakResult all_shed_result() {
  std::vector<ShardStats> stats(1);
  stats[0].shed = 10;
  SoakResult result;
  result.algorithm = algo::AlgorithmId::kTournament;
  result.k = 2;
  result.n = 2;
  result.target_rate = 100.0;
  result.duration_seconds = 0.1;
  result.wall_seconds = 0.1;
  result.planned = 10;
  result.degraded = true;
  merge_shard_stats(stats, &result);
  return result;
}

std::string render(void (*reporter)(const SoakSpec&,
                                    const std::vector<SoakResult>&,
                                    std::FILE*),
                   const SoakSpec& spec,
                   const std::vector<SoakResult>& results) {
  char* buffer = nullptr;
  std::size_t size = 0;
  std::FILE* mem = open_memstream(&buffer, &size);
  reporter(spec, results, mem);
  std::fclose(mem);
  std::string text(buffer, size);
  std::free(buffer);
  return text;
}

TEST(LatencyContract, AllShedRunOmitsTheJsonlLatencyBlock) {
  SoakSpec spec;
  spec.algorithms = {algo::AlgorithmId::kTournament};
  spec.shed_backlog = 4;
  const std::vector<SoakResult> results{all_shed_result()};
  const std::string jsonl = render(report_soak_jsonl, spec, results);
  EXPECT_NE(jsonl.find("\"schema\":\"rts-soak-3\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"shed\":10"), std::string::npos);
  EXPECT_NE(jsonl.find("\"degraded\":true"), std::string::npos);
  // Nothing completed: no latency distribution exists, so the block is
  // absent -- in the merged cell and in the per-shard block alike.
  EXPECT_EQ(jsonl.find("\"latency\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"p99\""), std::string::npos);
}

TEST(LatencyContract, AllShedRunRendersDashesInTheTable) {
  SoakSpec spec;
  spec.algorithms = {algo::AlgorithmId::kTournament};
  const std::vector<SoakResult> results{all_shed_result()};
  const std::string table = render(report_soak_table, spec, results);
  // The percentile columns show absence, not format_ns(0).
  EXPECT_NE(table.find(" - "), std::string::npos);
  EXPECT_EQ(table.find("0ns"), std::string::npos);
}

// ------------------------------------------------------ end-to-end soak --

SoakSpec sharded_spec(int shards) {
  SoakSpec spec;
  spec.algorithms = {algo::AlgorithmId::kTournament};
  spec.k = 2;
  spec.duration_seconds = 0.4;
  spec.rate = 50.0;  // 20 arrivals, 20ms apart: sustainable everywhere
  spec.seed = 77;
  spec.heartbeat_seconds = 10.0;  // no heartbeats in tests
  spec.shards = shards;
  return spec;
}

TEST(ShardedSoak, MergedViewEqualsThePerShardFold) {
  const SoakSpec spec = sharded_spec(3);
  const SoakResult result =
      run_soak_one(spec, spec.algorithms.front(), nullptr);
  EXPECT_EQ(result.shards, 3);
  ASSERT_EQ(result.shard_stats.size(), 3u);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_GT(result.completed, 0u);
  // Outcome bookkeeping: every arrival the dispatcher handled is in
  // exactly one bucket, latency samples come from completions only.
  EXPECT_EQ(result.latency.count(), result.completed);
  EXPECT_LE(result.completed + result.timed_out + result.shed, result.planned);
  std::uint64_t completed = 0, dispatched = 0, shed = 0;
  telemetry::LatencyHistogram refold;
  for (const ShardStats& shard : result.shard_stats) {
    completed += shard.completed;
    dispatched += shard.dispatched;
    shed += shard.shed;
    // No deadline in this spec: a dispatched arrival always completes.
    EXPECT_EQ(shard.dispatched, shard.completed + shard.timed_out);
    refold.merge(shard.latency);
  }
  EXPECT_EQ(completed, result.completed);
  EXPECT_EQ(shed, result.shed);
  EXPECT_EQ(dispatched, result.completed + result.timed_out);
  EXPECT_EQ(refold.count(), result.latency.count());
  EXPECT_EQ(refold.max(), result.latency.max());
}

TEST(ShardedSoak, OutcomeTotalsInvariantAcrossShardCounts) {
  // A fixed sustainable schedule (no deadline, no shedding) completes every
  // planned arrival, so the outcome-taxonomy totals cannot depend on the
  // shard count: {completed: planned, timed_out: 0, shed: 0}.
  for (const int shards : {1, 2, 4}) {
    const SoakSpec spec = sharded_spec(shards);
    const SoakResult result =
        run_soak_one(spec, spec.algorithms.front(), nullptr);
    EXPECT_EQ(result.completed, result.planned) << shards << " shards";
    EXPECT_EQ(result.timed_out, 0u);
    EXPECT_EQ(result.shed, 0u);
    EXPECT_EQ(result.violations, 0u);
    EXPECT_FALSE(result.degraded);
    EXPECT_EQ(result.latency.count(), result.planned);
  }
}

// ------------------------------------------------- checked flag parsing --

TEST(CheckedFlags, IntegerParserRejectsGarbage) {
  EXPECT_FALSE(parse_integer_flag("--ks", "banana", 1, 100));
  EXPECT_FALSE(parse_integer_flag("--ks", "", 1, 100));
  EXPECT_FALSE(parse_integer_flag("--ks", "12junk", 1, 100));
  EXPECT_FALSE(parse_integer_flag("--ks", "4,8", 1, 100));
  EXPECT_FALSE(parse_integer_flag("--trials", "-5", 1, 100));
  EXPECT_FALSE(parse_integer_flag("--trials", "0", 1, 100));
  EXPECT_FALSE(parse_integer_flag("--trials", "101", 1, 100));
  EXPECT_EQ(parse_integer_flag("--trials", "42", 1, 100), 42);
  EXPECT_EQ(parse_integer_flag("--workers", "0", 0, 100), 0);
}

TEST(CheckedFlags, U64ParserRejectsSignsAndJunk) {
  EXPECT_FALSE(parse_u64_flag("--seed", "-1", 0));
  EXPECT_FALSE(parse_u64_flag("--seed", "x", 0));
  EXPECT_FALSE(parse_u64_flag("--deadline-us", "0", 1));
  // 2^64 overflows and must be rejected, not wrapped.
  EXPECT_FALSE(parse_u64_flag("--seed", "18446744073709551616", 0));
  EXPECT_EQ(parse_u64_flag("--seed", "18446744073709551615", 0),
            UINT64_MAX);
}

TEST(CheckedFlags, DoubleParserRequiresFinitePositiveFullToken) {
  EXPECT_FALSE(parse_double_flag("--soak", "banana", 0.0));
  EXPECT_FALSE(parse_double_flag("--soak", "1.5x", 0.0));
  EXPECT_FALSE(parse_double_flag("--soak", "0", 0.0));
  EXPECT_FALSE(parse_double_flag("--soak", "-2", 0.0));
  EXPECT_FALSE(parse_double_flag("--soak", "inf", 0.0));
  EXPECT_FALSE(parse_double_flag("--soak", "nan", 0.0));
  EXPECT_EQ(parse_double_flag("--soak", "1.5", 0.0), 1.5);
}

// ------------------------------------------- watchdog teardown ordering --

TEST(WatchdogStress, RepeatedConstructCancelDestruct) {
  // Shutdown-ordering stress for the multi-pool world: every iteration
  // builds a pool, forces a real deadline cancellation, and tears the pool
  // down while the watchdog has just fired.  ASan/UBSan in CI turns any
  // watchdog-after-free or cancel-vs-parking race into a hard failure.
  // A delay fault makes the timeout deterministic: every participant
  // sleeps 2ms before its *first* shared op, the 0.2ms deadline fires
  // mid-sleep, and the first op observes the cancel flag and unwinds (a
  // stall would land at a random op index the election may never reach).
  const auto plan = fault::FaultPlan::parse("delay:p=1,us=2000", nullptr);
  ASSERT_TRUE(plan.has_value());
  for (int i = 0; i < 20; ++i) {
    hw::HwTrialPool pool(2);
    const fault::TrialFaults faults =
        plan->for_trial(static_cast<std::uint64_t>(i) + 1, 2);
    hw::HwRunOptions options;
    options.deadline_ns = 200'000;  // 0.2ms deadline vs 2ms stalls
    options.faults = &faults;
    const hw::HwRunResult run = pool.run(algo::AlgorithmId::kTournament, 2,
                                         static_cast<std::uint64_t>(i), options);
    EXPECT_TRUE(run.timed_out);
    EXPECT_FALSE(run.completed);
    // Pool destructs here, immediately after the watchdog cancelled.
  }
}

TEST(WatchdogStress, StaleDeadlineDoesNotCancelTheNextElection) {
  // Regression for the stale-deadline race: an armed election that
  // *finishes* leaves the watchdog parked on its captured deadline; if the
  // next armed election is published before the watchdog wakes, the old
  // deadline must not cancel it (nor must the watchdog ignore the new,
  // longer one).  Election A completes in microseconds with a 100ms
  // deadline; election B is delayed 250ms under a 2s deadline.  A's stale
  // deadline falls mid-B, so without the job_seq_ re-arm check B is
  // wrongly cancelled.
  const auto plan = fault::FaultPlan::parse("delay:p=1,us=250000", nullptr);
  ASSERT_TRUE(plan.has_value());
  hw::HwTrialPool pool(2);
  hw::HwRunOptions fast;
  fast.deadline_ns = 100'000'000;  // 100ms; the election takes microseconds
  const hw::HwRunResult a =
      pool.run(algo::AlgorithmId::kNativeAtomic, 2, 1, fast);
  EXPECT_FALSE(a.timed_out);
  const fault::TrialFaults faults = plan->for_trial(2, 2);
  hw::HwRunOptions slow;
  slow.deadline_ns = 2'000'000'000;  // 2s: far beyond the 250ms stalls
  slow.faults = &faults;
  const hw::HwRunResult b =
      pool.run(algo::AlgorithmId::kTournament, 2, 2, slow);
  EXPECT_FALSE(b.timed_out) << "stale deadline from the previous election "
                               "cancelled a healthy one";
  EXPECT_TRUE(b.completed);
}

}  // namespace
}  // namespace rts::campaign
