// Cross-cutting integration sweep: every algorithm in the registry, under
// every scheduler kind, across contention levels and seeds -- exactly one
// winner, no safety violations, sane space accounting.  This is the
// library's broadest safety net (one parameterized suite covers the full
// algorithm x adversary matrix).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "algo/registry.hpp"
#include "sim/runner.hpp"
#include "sim_harness.hpp"
#include "support/math.hpp"

namespace rts::algo {
namespace {

using rts::testing::SchedKind;

class AlgorithmMatrix
    : public ::testing::TestWithParam<std::tuple<AlgorithmId, int, SchedKind>> {
};

TEST_P(AlgorithmMatrix, ExactlyOneWinner) {
  const auto [id, k, sched] = GetParam();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto adversary = rts::testing::make_adversary(sched, seed);
    const auto r = sim::run_le_once(sim_builder(id), k, k, *adversary, seed);
    ASSERT_TRUE(r.violations.empty())
        << info(id).name << ": " << r.violations.front() << " seed=" << seed;
    EXPECT_EQ(r.winners, 1);
    EXPECT_EQ(r.losers, k - 1);
    EXPECT_TRUE(r.completed);
  }
}

TEST_P(AlgorithmMatrix, PartialParticipationStillElectsOne) {
  // Build for n but run only k=ceil(n/3) processes: adaptivity plumbing.
  const auto [id, n, sched] = GetParam();
  const int k = std::max(1, n / 3);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto adversary = rts::testing::make_adversary(sched, seed);
    const auto r = sim::run_le_once(sim_builder(id), n, k, *adversary, seed);
    ASSERT_TRUE(r.violations.empty())
        << info(id).name << ": " << r.violations.front();
    EXPECT_EQ(r.winners, 1);
  }
}

std::string matrix_name(
    const ::testing::TestParamInfo<std::tuple<AlgorithmId, int, SchedKind>>&
        param_info) {
  const auto [id, k, sched] = param_info.param;
  std::string name = info(id).name;
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_k" + std::to_string(k) + "_" +
         rts::testing::to_string(sched);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AlgorithmMatrix,
    ::testing::Combine(
        ::testing::Values(AlgorithmId::kLogStarChain, AlgorithmId::kSiftChain,
                          AlgorithmId::kSiftCascade, AlgorithmId::kRatRace,
                          AlgorithmId::kRatRacePath,
                          AlgorithmId::kCombinedLogStar,
                          AlgorithmId::kCombinedSift,
                          AlgorithmId::kTournament),
        ::testing::Values(2, 7, 31),
        ::testing::Values(SchedKind::kSequential, SchedKind::kRoundRobin,
                          SchedKind::kRandom)),
    matrix_name);

TEST(Registry, FullyDeterministicGivenSeeds) {
  // The reproducibility contract: algorithm + seed + adversary seed fully
  // determine the execution -- winner, per-process step counts, total steps.
  for (const AlgoInfo& algo : all_algorithms()) {
    if (!supports(algo.id, exec::Backend::kSim)) continue;
    const auto run = [&](std::uint64_t seed) {
      sim::UniformRandomAdversary adversary(seed);
      return sim::run_le_once(sim_builder(algo.id), 12, 12, adversary, seed);
    };
    const auto a = run(1234);
    const auto b = run(1234);
    EXPECT_EQ(a.total_steps, b.total_steps) << algo.name;
    EXPECT_EQ(a.steps, b.steps) << algo.name;
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      EXPECT_EQ(a.outcomes[i], b.outcomes[i]) << algo.name << " pid " << i;
    }
    // And a different seed gives a different execution (overwhelmingly).
    const auto c = run(5678);
    EXPECT_TRUE(c.total_steps != a.total_steps || c.steps != a.steps)
        << algo.name << ": suspiciously identical across seeds";
  }
}

TEST(Registry, NamesRoundTrip) {
  for (const AlgoInfo& algo : all_algorithms()) {
    const auto parsed = parse_algorithm(algo.name);
    ASSERT_TRUE(parsed.has_value()) << algo.name;
    EXPECT_EQ(*parsed, algo.id);
    EXPECT_EQ(info(algo.id).name, std::string(algo.name));
  }
  EXPECT_FALSE(parse_algorithm("nonsense").has_value());
}

TEST(Registry, EveryAlgorithmDeclaresSpace) {
  for (const AlgoInfo& algo : all_algorithms()) {
    if (!supports(algo.id, exec::Backend::kSim)) continue;
    sim::Kernel kernel;
    const auto built = sim_builder(algo.id)(kernel, 64);
    EXPECT_GT(built.declared_registers, 0u) << algo.name;
    // Declared is an upper bound on what construction actually allocated.
    EXPECT_GE(built.declared_registers, kernel.memory().allocated())
        << algo.name;
  }
}

TEST(Registry, SpaceComplexityOrdering) {
  // The paper's space story at n = 128: RatRace original is Theta(n^3);
  // everything this paper contributes is O(n); the lower bound says you
  // cannot go below Omega(log n).
  constexpr int n = 128;
  const auto declared = [&](AlgorithmId id) {
    sim::Kernel kernel;
    return sim_builder(id)(kernel, n).declared_registers;
  };
  const auto cubic = declared(AlgorithmId::kRatRace);
  const auto path = declared(AlgorithmId::kRatRacePath);
  const auto logstar = declared(AlgorithmId::kLogStarChain);
  EXPECT_GT(cubic, static_cast<std::size_t>(n) * n * n);
  EXPECT_LT(path, 100u * n);
  EXPECT_LT(logstar, 100u * n);
  EXPECT_GE(logstar, static_cast<std::size_t>(
                         support::log2_ceil(n)));  // Thm 5.1 lower bound
}

class AlgorithmCrashMatrix : public ::testing::TestWithParam<AlgorithmId> {};

TEST_P(AlgorithmCrashMatrix, AtMostOneWinnerUnderCrashes) {
  // Failure injection across the whole registry: random crashes at random
  // points must never produce two winners, for any algorithm.
  const AlgorithmId id = GetParam();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    sim::RoundRobinAdversary inner;
    sim::CrashInjectingAdversary adversary(inner, seed, /*crash_prob=*/0.03,
                                           /*max_crashes=*/4);
    const auto r = sim::run_le_once(sim_builder(id), 20, 20, adversary, seed);
    EXPECT_LE(r.winners, 1) << info(id).name << " seed=" << seed;
    for (const auto& v : r.violations) {
      EXPECT_EQ(v.find("safety"), std::string::npos)
          << info(id).name << ": " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Crashes, AlgorithmCrashMatrix,
    ::testing::Values(AlgorithmId::kLogStarChain, AlgorithmId::kSiftChain,
                      AlgorithmId::kSiftCascade, AlgorithmId::kRatRace,
                      AlgorithmId::kRatRacePath,
                      AlgorithmId::kCombinedLogStar,
                      AlgorithmId::kCombinedSift, AlgorithmId::kTournament,
                      AlgorithmId::kAaSiftRatRace),
    [](const auto& param_info) {
      std::string name = rts::algo::info(param_info.param).name;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Runner, StarvationOfAllButOneStillTerminates) {
  // Degenerate fixed schedule: only process 0 is ever scheduled; everyone
  // else is starved forever (equivalent to crashing them at the start).
  // Process 0 must win and terminate -- this is solo termination in situ.
  for (const AlgoInfo& algo : all_algorithms()) {
    if (!supports(algo.id, exec::Backend::kSim)) continue;
    sim::Kernel kernel;
    auto built = sim_builder(algo.id)(kernel, 8);
    std::vector<sim::Outcome> out(4, sim::Outcome::kUnknown);
    for (int p = 0; p < 4; ++p) {
      kernel.add_process(
          [&built, &out, p](sim::Context& ctx) { out[p] = built.elect(ctx); },
          std::make_unique<support::PrngSource>(p + 1));
    }
    kernel.start();
    while (kernel.runnable(0)) kernel.grant(0);
    EXPECT_EQ(out[0], sim::Outcome::kWin) << algo.name;
  }
}

}  // namespace
}  // namespace rts::algo
