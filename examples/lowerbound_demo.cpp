// Lower-bound demo: watch the Omega(log n) covering argument (Theorem 5.1)
// run against a real algorithm, round by round.
//
//   ./build/examples/lowerbound_demo [n] [algorithm]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "lowerbound/covering.hpp"
#include "support/math.hpp"

int main(int argc, char** argv) {
  using namespace rts;
  const int n = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::string algo_name = argc > 2 ? argv[2] : "logstar";
  const auto id = algo::parse_algorithm(algo_name);
  if (!id.has_value()) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo_name.c_str());
    return 1;
  }

  std::printf("covering argument vs %s, n = %d processes\n",
              algo::info(*id).name, n);
  std::printf(
      "goal: after n-4 rounds, >= log2(n)-1 = %d registers are covered\n\n",
      support::log2_ceil(static_cast<std::uint64_t>(n)) - 1);

  const lb::CoveringResult r = lb::run_covering_argument(*id, n, /*seed=*/1);
  if (!r.ok) {
    std::printf("construction failed: %s\n", r.error.c_str());
    return 1;
  }

  std::printf("group counts m_k per round (groups only merge):\n  ");
  for (std::size_t i = 0; i < r.m_history.size(); ++i) {
    std::printf("%d%s", r.m_history[i],
                i + 1 < r.m_history.size() ? " -> " : "\n");
    if (i % 12 == 11) std::printf("\n  ");
  }

  std::printf("\nfinal state after %d rounds (%llu shared-memory steps):\n",
              r.rounds, static_cast<unsigned long long>(r.total_steps));
  std::printf("  undecided groups (m_{n-4})   : %d\n", r.final_groups);
  std::printf("  distinct covered registers   : %d\n", r.covered_registers);
  std::printf("  paper bound log2(n) - 1      : %d\n", r.paper_bound);
  std::printf("  bound witnessed              : %s\n",
              r.covered_registers >= r.paper_bound ? "YES" : "NO");
  return 0;
}
