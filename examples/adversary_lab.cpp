// Adversary lab: run any algorithm from the registry under a chosen
// scheduler in the simulator and inspect what happens -- step counts per
// process, space touched, and the safety checks.  This is the library's
// research-facing entry point.
//
//   ./build/examples/adversary_lab [algorithm] [k] [adversary] [seed]
//   ./build/examples/adversary_lab --list
//   ./build/examples/adversary_lab --trace [algorithm] [k] [seed]
//
//   algorithm: logstar | sift | cascade | ratrace | ratrace-path |
//              combined-logstar | combined-sift | tournament | aa
//   adversary: random | roundrobin | sequential | attack
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "algo/attacks.hpp"
#include "algo/registry.hpp"
#include "sim/adversaries.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"
#include "support/table.hpp"

namespace {

using namespace rts;

void list_algorithms() {
  support::Table table("algorithms",
                       {"name", "expected steps", "adversary model",
                        "description"});
  for (const algo::AlgoInfo& info : algo::all_algorithms()) {
    table.add_row({info.name, info.complexity, info.adversary,
                   info.description});
  }
  table.print();
}

}  // namespace

int trace_run(int argc, char** argv) {
  const std::string algo_name = argc > 2 ? argv[2] : "logstar";
  const int k = argc > 3 ? std::atoi(argv[3]) : 3;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
  const auto id = algo::parse_algorithm(algo_name);
  if (!id.has_value() || k < 1 || k > 64) {
    std::fprintf(stderr, "usage: %s --trace [algorithm] [k 1..64] [seed]\n",
                 argv[0]);
    return 1;
  }
  if (!algo::supports(*id, exec::Backend::kSim)) {
    std::fprintf(stderr, "%s is hw-only; the trace lab drives the simulator\n",
                 algo_name.c_str());
    return 1;
  }
  sim::Kernel::Options options;
  options.track_events = true;
  sim::Kernel kernel(options);
  const auto built = algo::sim_builder(*id)(kernel, k);
  for (int pid = 0; pid < k; ++pid) {
    kernel.add_process([&built](sim::Context& ctx) { built.elect(ctx); },
                       std::make_unique<support::PrngSource>(
                           support::derive_seed(seed, pid)));
  }
  sim::UniformRandomAdversary adversary(seed);
  kernel.run(adversary);
  std::printf("%s", sim::format_trace(kernel, 120).c_str());
  std::printf("total steps: %llu\n",
              static_cast<unsigned long long>(kernel.total_steps()));

  support::Table usage("space and traffic by component",
                       {"component", "registers", "reads", "writes"});
  for (const auto& row : kernel.memory().usage_by_prefix()) {
    usage.add_row({row.prefix, support::Table::num(row.registers),
                   support::Table::num(static_cast<std::size_t>(row.reads)),
                   support::Table::num(static_cast<std::size_t>(row.writes))});
  }
  usage.print();
  return 0;
}

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
    list_algorithms();
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--trace") == 0) {
    return trace_run(argc, argv);
  }

  const std::string algo_name = argc > 1 ? argv[1] : "combined-logstar";
  const int k = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::string sched = argc > 3 ? argv[3] : "random";
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

  const auto id = algo::parse_algorithm(algo_name);
  if (!id.has_value() || k < 1 || k > 4096) {
    std::fprintf(stderr,
                 "usage: %s [algorithm] [k 1..4096] "
                 "[random|roundrobin|sequential|attack] [seed]\n"
                 "       %s --list\n",
                 argv[0], argv[0]);
    return 1;
  }

  if (!algo::supports(*id, exec::Backend::kSim)) {
    std::fprintf(stderr,
                 "%s is hw-only; the lab drives the simulator "
                 "(try rts_bench --backend hw)\n",
                 algo_name.c_str());
    return 1;
  }

  std::printf("algorithm : %s (%s, vs %s adversary)\n",
              algo::info(*id).name, algo::info(*id).complexity,
              algo::info(*id).adversary);
  std::printf("contention: k = %d, scheduler = %s, seed = %llu\n", k,
              sched.c_str(), static_cast<unsigned long long>(seed));

  if (sched == "attack") {
    const algo::AttackResult r = algo::run_attack(
        *id, algo::AttackKind::kGroupElectionNeutralizer, k, seed);
    std::printf("\nadaptive attack (group-election neutralizer):\n");
    std::printf("  max individual steps : %llu\n",
                static_cast<unsigned long long>(r.max_steps));
    std::printf("  total steps          : %llu\n",
                static_cast<unsigned long long>(r.total_steps));
    std::printf("  winners              : %d\n", r.winners);
    for (const auto& v : r.violations) std::printf("  VIOLATION: %s\n", v.c_str());
    return r.violations.empty() ? 0 : 1;
  }

  std::unique_ptr<sim::Adversary> adversary;
  if (sched == "roundrobin") {
    adversary = std::make_unique<sim::RoundRobinAdversary>();
  } else if (sched == "sequential") {
    adversary = std::make_unique<sim::SequentialAdversary>();
  } else {
    adversary = std::make_unique<sim::UniformRandomAdversary>(seed);
  }

  const sim::LeRunResult r =
      sim::run_le_once(algo::sim_builder(*id), k, k, *adversary, seed);

  std::printf("\nresults:\n");
  std::printf("  winner pid           : ");
  for (int pid = 0; pid < k; ++pid) {
    if (r.outcomes[static_cast<std::size_t>(pid)] == sim::Outcome::kWin) {
      std::printf("%d", pid);
    }
  }
  std::printf("\n  max individual steps : %llu\n",
              static_cast<unsigned long long>(r.max_steps));
  std::printf("  total steps          : %llu\n",
              static_cast<unsigned long long>(r.total_steps));
  std::printf("  registers declared   : %zu\n", r.declared_registers);
  std::printf("  registers touched    : %zu\n", r.regs_touched);

  support::Table per_proc("per-process", {"pid", "steps", "outcome"});
  for (int pid = 0; pid < std::min(k, 32); ++pid) {
    const auto outcome = r.outcomes[static_cast<std::size_t>(pid)];
    per_proc.add_row(
        {support::Table::num(static_cast<std::size_t>(pid)),
         support::Table::num(
             static_cast<std::size_t>(r.steps[static_cast<std::size_t>(pid)])),
         outcome == sim::Outcome::kWin
             ? "WIN"
             : (outcome == sim::Outcome::kLose ? "lose" : "-")});
  }
  per_proc.print();
  if (k > 32) std::printf("(first 32 processes shown)\n");

  for (const auto& v : r.violations) std::printf("VIOLATION: %s\n", v.c_str());
  return r.violations.empty() ? 0 : 1;
}
