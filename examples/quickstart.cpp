// Quickstart: elect a leader among real threads with the library's default
// algorithm (the paper's Corollary-4.2 combination: O(log* k) expected steps
// under benign scheduling, O(log k) under adversarial scheduling, Theta(n)
// registers).
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "core/rts.hpp"

int main() {
  constexpr int kThreads = 8;

  rts::TestAndSet::Options options;
  options.max_processes = kThreads;
  options.algorithm = rts::Algorithm::kCombinedLogStar;  // the default
  rts::TestAndSet tas(options);

  std::printf("quickstart: %d threads race on one test-and-set bit\n",
              kThreads);
  std::printf("structure size: %zu registers (Theta(n))\n",
              tas.declared_registers());

  std::vector<std::jthread> threads;
  threads.reserve(kThreads);
  for (int pid = 0; pid < kThreads; ++pid) {
    threads.emplace_back([&tas, pid] {
      if (tas.test_and_set(pid) == 0) {
        std::printf("  thread %d: got 0 -- I am the leader\n", pid);
      } else {
        std::printf("  thread %d: got 1\n", pid);
      }
    });
  }
  threads.clear();  // join

  std::printf("done: exactly one thread observed 0.\n");
  return 0;
}
