// Renaming from test-and-set -- the classical application the paper's
// introduction cites (Alistarh et al. use TAS objects exactly this way).
//
// k threads with large, sparse original ids acquire small names by walking a
// row of one-shot TAS objects and claiming the first one they win.  With n
// TAS objects, every thread gets a unique name in {0, ..., n-1}.
//
//   ./build/examples/renaming [threads]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/rts.hpp"

namespace {

class RenamingTable {
 public:
  explicit RenamingTable(int capacity) {
    slots_.reserve(static_cast<std::size_t>(capacity));
    for (int i = 0; i < capacity; ++i) {
      rts::TestAndSet::Options options;
      options.max_processes = capacity;
      options.algorithm = rts::Algorithm::kRatRacePath;
      options.seed = 0x9e3779b9 + static_cast<std::uint64_t>(i);
      slots_.push_back(std::make_unique<rts::TestAndSet>(options));
    }
  }

  /// Returns the acquired name, or -1 if the table is full (cannot happen
  /// with capacity >= #threads).
  int acquire(int pid) {
    for (int name = 0; name < static_cast<int>(slots_.size()); ++name) {
      if (slots_[static_cast<std::size_t>(name)]->test_and_set(pid) == 0) {
        return name;
      }
    }
    return -1;
  }

 private:
  std::vector<std::unique_ptr<rts::TestAndSet>> slots_;
};

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 6;
  if (threads < 1 || threads > 64) {
    std::fprintf(stderr, "usage: %s [1..64 threads]\n", argv[0]);
    return 1;
  }

  RenamingTable table(threads);
  std::vector<int> names(static_cast<std::size_t>(threads), -1);

  std::printf("renaming: %d threads acquire names from {0..%d}\n", threads,
              threads - 1);
  {
    std::vector<std::jthread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int pid = 0; pid < threads; ++pid) {
      workers.emplace_back([&, pid] {
        names[static_cast<std::size_t>(pid)] = table.acquire(pid);
      });
    }
  }  // join

  std::vector<bool> taken(static_cast<std::size_t>(threads), false);
  bool ok = true;
  for (int pid = 0; pid < threads; ++pid) {
    const int name = names[static_cast<std::size_t>(pid)];
    std::printf("  thread %d -> name %d\n", pid, name);
    if (name < 0 || name >= threads || taken[static_cast<std::size_t>(name)]) {
      ok = false;
    } else {
      taken[static_cast<std::size_t>(name)] = true;
    }
  }
  std::printf(ok ? "all names unique -- renaming succeeded.\n"
                 : "RENAMING FAILED\n");
  return ok ? 0 : 1;
}
